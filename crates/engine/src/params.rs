//! Tuning parameters — the search space of the YaskSite tool.

use std::fmt;

use yasksite_grid::Fold;

/// The tunable execution parameters of one kernel, mirroring YASK's knob
/// set: spatial block sizes, the vector fold, thread count, wavefront depth
/// and the store policy.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TuningParams {
    /// Spatial block extents `[bx, by, bz]` in lattice points.
    pub block: [usize; 3],
    /// Sub-block extents nested inside each block (`None` = no inner
    /// tiling). YASK's sub-blocks tile a block for the L1/L2 levels the
    /// outer block leaves uncovered.
    pub sub_block: Option<[usize; 3]>,
    /// Vector fold (memory layout + SIMD brick shape).
    pub fold: Fold,
    /// Number of worker threads / simulated cores.
    pub threads: usize,
    /// Temporal-blocking depth: time steps fused per wavefront sweep
    /// (1 = plain spatial blocking).
    pub wavefront: usize,
    /// Use non-temporal (streaming) stores.
    pub streaming_stores: bool,
}

impl TuningParams {
    /// Creates parameters with the given block and fold; one thread, no
    /// temporal blocking, regular stores.
    #[must_use]
    pub fn new(block: [usize; 3], fold: Fold) -> Self {
        TuningParams {
            block,
            sub_block: None,
            fold,
            threads: 1,
            wavefront: 1,
            streaming_stores: false,
        }
    }

    /// Sets the nested sub-block extents.
    #[must_use]
    pub fn sub_block(mut self, sb: [usize; 3]) -> Self {
        self.sub_block = Some(sb);
        self
    }

    /// Sets the thread / simulated-core count.
    #[must_use]
    pub fn threads(mut self, t: usize) -> Self {
        self.threads = t;
        self
    }

    /// Sets the wavefront depth.
    #[must_use]
    pub fn wavefront(mut self, w: usize) -> Self {
        self.wavefront = w;
        self
    }

    /// Sets the store policy.
    #[must_use]
    pub fn streaming_stores(mut self, on: bool) -> Self {
        self.streaming_stores = on;
        self
    }

    /// Block extents clipped to a domain.
    #[must_use]
    pub fn clipped_block(&self, domain: [usize; 3]) -> [usize; 3] {
        [
            self.block[0].clamp(1, domain[0]),
            self.block[1].clamp(1, domain[1]),
            self.block[2].clamp(1, domain[2]),
        ]
    }

    /// Validates against a domain.
    ///
    /// # Errors
    /// Returns a reason string if any extent or count is zero.
    pub fn validate(&self, domain: [usize; 3]) -> Result<(), String> {
        if self.block.contains(&0) {
            return Err("block extents must be positive".into());
        }
        if let Some(sb) = self.sub_block {
            if sb.contains(&0) {
                return Err("sub-block extents must be positive".into());
            }
        }
        if self.threads == 0 {
            return Err("thread count must be positive".into());
        }
        if self.wavefront == 0 {
            return Err("wavefront depth must be positive".into());
        }
        if domain.contains(&0) {
            return Err("domain extents must be positive".into());
        }
        Ok(())
    }

    /// Whether this fold keeps storage row-major (`fy == fz == 1`), which
    /// enables the engine's fast native path and thread slabs.
    #[must_use]
    pub fn row_major(&self) -> bool {
        self.fold.y == 1 && self.fold.z == 1
    }
}

/// Splits `total` units into at most `parts` contiguous, non-empty
/// `(start, end)` ranges — the decomposition every threaded native path
/// uses (z-blocks into slabs, y-blocks into plane chunks).
///
/// The split depends only on `(total, parts)` — the requested thread
/// count from [`TuningParams::threads`] — and never on how many pool
/// workers execute the ranges, which is what keeps native results
/// bitwise reproducible for any pool size.
pub(crate) fn chunk_ranges(total: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.clamp(1, total.max(1));
    let mut out = Vec::with_capacity(parts);
    for t in 0..parts {
        let b0 = t * total / parts;
        let b1 = (t + 1) * total / parts;
        if b0 != b1 {
            out.push((b0, b1));
        }
    }
    out
}

impl fmt::Display for TuningParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "b={}x{}x{}{} fold={} t={} wf={}{}",
            self.block[0],
            self.block[1],
            self.block[2],
            self.sub_block
                .map(|s| format!("/sb={}x{}x{}", s[0], s[1], s[2]))
                .unwrap_or_default(),
            self.fold,
            self.threads,
            self.wavefront,
            if self.streaming_stores { " nt" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let p = TuningParams::new([64, 8, 8], Fold::new(8, 1, 1))
            .threads(4)
            .wavefront(3)
            .streaming_stores(true);
        assert_eq!(p.threads, 4);
        assert_eq!(p.wavefront, 3);
        assert!(p.streaming_stores);
        assert!(p.row_major());
    }

    #[test]
    fn clipping() {
        let p = TuningParams::new([64, 64, 64], Fold::unit());
        assert_eq!(p.clipped_block([32, 128, 1]), [32, 64, 1]);
    }

    #[test]
    fn validation() {
        let p = TuningParams::new([0, 8, 8], Fold::unit());
        assert!(p.validate([16, 16, 16]).is_err());
        let p = TuningParams::new([8, 8, 8], Fold::unit()).threads(0);
        assert!(p.validate([16, 16, 16]).is_err());
        let p = TuningParams::new([8, 8, 8], Fold::unit());
        assert!(p.validate([16, 16, 16]).is_ok());
    }

    #[test]
    fn multi_dim_fold_not_row_major() {
        assert!(!TuningParams::new([8, 8, 8], Fold::new(4, 2, 1)).row_major());
    }

    #[test]
    fn display_compact() {
        let p = TuningParams::new([64, 8, 8], Fold::new(8, 1, 1)).wavefront(2);
        assert_eq!(p.to_string(), "b=64x8x8 fold=8x1x1 t=1 wf=2");
        let p = p.sub_block([16, 4, 4]);
        assert_eq!(p.to_string(), "b=64x8x8/sb=16x4x4 fold=8x1x1 t=1 wf=2");
    }

    #[test]
    fn chunk_ranges_cover_exactly_and_never_exceed_parts() {
        for total in 0..40usize {
            for parts in 1..9usize {
                let r = chunk_ranges(total, parts);
                assert!(r.len() <= parts);
                assert!(r.iter().all(|&(a, b)| a < b));
                let covered: usize = r.iter().map(|&(a, b)| b - a).sum();
                assert_eq!(covered, total, "total={total} parts={parts}");
                for w in r.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "ranges must be contiguous");
                }
            }
        }
    }

    #[test]
    fn zero_sub_block_rejected() {
        let p = TuningParams::new([8, 8, 8], Fold::unit()).sub_block([0, 4, 4]);
        assert!(p.validate([16, 16, 16]).is_err());
    }
}
