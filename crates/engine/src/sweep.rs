//! The unified execution API: [`SweepRequest`] / [`SweepReport`].
//!
//! The native engine grew one entry point per execution dimension
//! (pool × profiler × wavefront), and the vector-folded tier adds yet
//! another. Instead of a seventh free function, every run is now
//! constructed through one builder — mirroring the `TuneRequest` redesign
//! on the tuning side — and returns a [`SweepReport`] that records not
//! just the timing but *which tier actually executed and why*:
//!
//! ```
//! use yasksite_engine::{SweepRequest, Tier, TierPolicy, TuningParams};
//! use yasksite_grid::{Fold, Grid3};
//! use yasksite_stencil::builders::heat3d;
//!
//! let s = heat3d(1);
//! let fold = Fold::new(8, 1, 1);
//! let mut u = Grid3::new("u", [32, 32, 32], [1, 1, 1], fold);
//! u.fill_with(|i, j, k| (i + j + k) as f64);
//! let mut out = Grid3::new("out", [32, 32, 32], [1, 1, 1], fold);
//! let params = TuningParams::new([32, 8, 8], fold);
//! let report = SweepRequest::new(&params)
//!     .tier(TierPolicy::Auto)
//!     .apply(&s, &[&u], &mut out)?;
//! assert_eq!(report.tier, Tier::Folded);
//! # Ok::<(), yasksite_engine::EngineError>(())
//! ```

use std::time::Instant;

use yasksite_grid::Grid3;
use yasksite_stencil::Stencil;

use crate::compile::CompiledStencil;
use crate::error::EngineError;
use crate::native::{execute_apply, NativeRun};
use crate::params::TuningParams;
use crate::pool::ExecPool;
use crate::profile::SweepProfiler;
use crate::wavefront::execute_wavefront;

/// Environment variable that overrides the default tier policy
/// (`scalar` or `folded`); see [`TierPolicy::from_env`].
pub const FORCE_TIER_ENV: &str = "YASKSITE_FORCE_TIER";

/// The rung of the specialisation ladder a sweep actually executed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Explicitly vectorised kernels: the wide-lane row kernel on
    /// row-major folds, or the brick-gather kernel on multi-dimensional
    /// folds. Bitwise identical to every other tier.
    Folded,
    /// The scalar specialised row kernels (monomorphised by arity, with
    /// a dynamic-arity fallback) on row-major storage.
    Scalar,
    /// The threaded tape interpreter for non-linear stencils on
    /// row-major storage.
    Tape,
    /// The layout-agnostic per-point path (single-threaded).
    Generic,
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Tier::Folded => "folded",
            Tier::Scalar => "scalar",
            Tier::Tape => "tape",
            Tier::Generic => "generic",
        };
        write!(f, "{s}")
    }
}

/// How the executor chooses between the folded and scalar tiers.
///
/// Forcing a tier never changes results — every tier computes each output
/// point with the identical FP operation order — it only changes which
/// kernel runs. When a forced tier is ineligible for the stencil/layout
/// at hand, the executor degrades down the ladder and records the reason
/// in [`SweepReport::tier_reason`] rather than failing. The tape and
/// generic tiers are selected by stencil/layout alone and are unaffected
/// by the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TierPolicy {
    /// Prefer the folded tier whenever the stencil/layout is eligible.
    #[default]
    Auto,
    /// Run linear row-major sweeps through the scalar row kernels.
    ForceScalar,
    /// Require the folded tier; degrade with a recorded reason when
    /// ineligible.
    ForceFolded,
}

impl TierPolicy {
    /// Parses a policy name: `auto`, `scalar` or `folded`
    /// (case-insensitive). Returns `None` for anything else.
    #[must_use]
    pub fn parse(s: &str) -> Option<TierPolicy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(TierPolicy::Auto),
            "scalar" => Some(TierPolicy::ForceScalar),
            "folded" => Some(TierPolicy::ForceFolded),
            _ => None,
        }
    }

    /// The policy selected by the `YASKSITE_FORCE_TIER` environment
    /// variable, read live: `scalar`/`folded` force the respective tier
    /// for the whole process (the CI forced-tier legs run the entire
    /// suite this way), anything else — including unset — is
    /// [`TierPolicy::Auto`].
    #[must_use]
    pub fn from_env() -> TierPolicy {
        std::env::var(FORCE_TIER_ENV)
            .ok()
            .and_then(|v| TierPolicy::parse(&v))
            .unwrap_or(TierPolicy::Auto)
    }
}

/// The concrete kernel the planner picked (internal; collapses to
/// [`Tier`] for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Plan {
    /// Folded lane kernel on row-major storage with this many x-lanes.
    Lanes(usize),
    /// Folded brick-gather kernel with this many elements per brick.
    Brick(usize),
    /// Scalar specialised row kernels.
    Scalar,
    /// Threaded tape interpreter.
    Tape,
    /// Per-point generic path.
    Generic,
}

impl Plan {
    pub(crate) fn tier(self) -> Tier {
        match self {
            Plan::Lanes(_) | Plan::Brick(_) => Tier::Folded,
            Plan::Scalar => Tier::Scalar,
            Plan::Tape => Tier::Tape,
            Plan::Generic => Tier::Generic,
        }
    }
}

/// Lane counts the hand-unrolled kernels are monomorphised for.
pub(crate) fn lane_count_supported(lanes: usize) -> bool {
    matches!(lanes, 2 | 4 | 8 | 16)
}

/// Picks the kernel for a spatial sweep. `geometry_shared` says whether
/// every input grid shares `alloc`/`halo` with the output (the brick
/// kernel addresses all grids through one gather table, so it needs
/// identical layouts).
pub(crate) fn plan_spatial(
    compiled: &CompiledStencil,
    geometry_shared: bool,
    params: &TuningParams,
    policy: TierPolicy,
) -> (Plan, &'static str) {
    if !compiled.is_linear() {
        return if params.row_major() {
            (Plan::Tape, "non-linear stencil: threaded tape interpreter")
        } else {
            (
                Plan::Generic,
                "non-linear stencil on a multi-dimensional fold: per-point generic path",
            )
        };
    }
    if params.row_major() {
        let lanes = params.fold.x;
        match policy {
            TierPolicy::ForceScalar => (Plan::Scalar, "tier forced to scalar"),
            _ if lane_count_supported(lanes) => {
                (Plan::Lanes(lanes), "row-major fold: folded lane kernel")
            }
            TierPolicy::ForceFolded => (
                Plan::Scalar,
                "folded tier forced but fold.x has no supported lane count: scalar row kernels",
            ),
            TierPolicy::Auto => (
                Plan::Scalar,
                "fold.x has no supported lane count: scalar row kernels",
            ),
        }
    } else {
        let elems = params.fold.elems();
        let eligible = lane_count_supported(elems) && geometry_shared;
        match policy {
            TierPolicy::ForceScalar => (
                Plan::Generic,
                "tier forced to scalar but scalar row kernels need a row-major fold: generic path",
            ),
            _ if eligible => (
                Plan::Brick(elems),
                "multi-dimensional fold: folded brick kernel",
            ),
            _ => (
                Plan::Generic,
                "multi-dimensional fold ineligible for the brick kernel \
                 (unsupported lane count or mismatched grid layouts): generic path",
            ),
        }
    }
}

/// A-priori tier query for the tuner and the ECM model: which tier
/// *would* a spatial sweep of `stencil` under `params` run on, assuming
/// identically laid-out grids (as `Solution::allocate_grids` produces)
/// and the [`TierPolicy::Auto`] policy?
///
/// Execution may still degrade (and [`SweepReport::tier`] records the
/// truth) when actual grid layouts differ.
#[must_use]
pub fn plan_tier(stencil: &Stencil, params: &TuningParams) -> (Tier, &'static str) {
    plan_tier_with(stencil, params, TierPolicy::Auto)
}

/// [`plan_tier`] under an explicit [`TierPolicy`] — what the daemon and
/// CLI use to report the tier a winner would execute on under the live
/// policy (e.g. a `YASKSITE_FORCE_TIER` override).
#[must_use]
pub fn plan_tier_with(
    stencil: &Stencil,
    params: &TuningParams,
    policy: TierPolicy,
) -> (Tier, &'static str) {
    let compiled = CompiledStencil::compile(stencil);
    let (plan, reason) = plan_spatial(&compiled, true, params, policy);
    (plan.tier(), reason)
}

/// The planner reasons that mean a sweep ran *below* the tier its fold
/// or policy asked for (as opposed to simply naming the natural pick).
/// Kept in lock-step with the literals in [`plan_spatial`]; the
/// observability layer turns these into `tier.degraded` counters.
const DEGRADED_REASONS: [&str; 5] = [
    "non-linear stencil on a multi-dimensional fold: per-point generic path",
    "folded tier forced but fold.x has no supported lane count: scalar row kernels",
    "fold.x has no supported lane count: scalar row kernels",
    "tier forced to scalar but scalar row kernels need a row-major fold: generic path",
    "multi-dimensional fold ineligible for the brick kernel \
     (unsupported lane count or mismatched grid layouts): generic path",
];

/// Whether a planner reason (from [`plan_tier`] or
/// [`SweepReport::tier_reason`]) records a degradation.
#[must_use]
pub fn tier_reason_degraded(reason: &str) -> bool {
    DEGRADED_REASONS.contains(&reason)
}

/// Builder for one native sweep: spatial (`apply`) or temporally blocked
/// (`run_wavefront`). The single configurable entry point to the native
/// executors (the former free-function family was removed after its
/// deprecation release).
///
/// Defaults: the process-global [`ExecPool`], no profiler, and the tier
/// policy from [`TierPolicy::from_env`].
#[derive(Clone)]
pub struct SweepRequest<'a> {
    params: TuningParams,
    pool: Option<&'a ExecPool>,
    profiler: Option<&'a SweepProfiler>,
    tier: TierPolicy,
}

impl<'a> SweepRequest<'a> {
    /// Starts a request from tuning parameters (block, sub-block, fold,
    /// threads, wavefront depth, store policy). The parameters are
    /// copied; later builder calls refine this copy.
    #[must_use]
    pub fn new(params: &TuningParams) -> SweepRequest<'a> {
        SweepRequest {
            params: params.clone(),
            pool: None,
            profiler: None,
            tier: TierPolicy::from_env(),
        }
    }

    /// Runs on `pool` instead of the process-global pool. Results are
    /// bitwise identical for any pool: the work decomposition depends
    /// only on `(domain, params.threads)`.
    #[must_use]
    pub fn pool(mut self, pool: &'a ExecPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Attaches a [`SweepProfiler`]. Profiling reads clocks only around
    /// the kernels, never inside them, so profiled runs stay bitwise
    /// identical.
    #[must_use]
    pub fn profiler(mut self, prof: &'a SweepProfiler) -> Self {
        self.profiler = Some(prof);
        self
    }

    /// Overrides the tier policy (the default comes from
    /// `YASKSITE_FORCE_TIER`). An explicit policy always wins over the
    /// environment.
    #[must_use]
    pub fn tier(mut self, policy: TierPolicy) -> Self {
        self.tier = policy;
        self
    }

    /// Overrides the wavefront depth from the parameters (only
    /// meaningful for [`SweepRequest::run_wavefront`]).
    #[must_use]
    pub fn wavefront(mut self, depth: usize) -> Self {
        self.params.wavefront = depth;
        self
    }

    /// The parameters this request will execute with.
    #[must_use]
    pub fn params(&self) -> &TuningParams {
        &self.params
    }

    fn pool_ref(&self) -> &ExecPool {
        match self.pool {
            Some(pool) => pool,
            None => ExecPool::global(),
        }
    }

    /// Applies `stencil` once over the full domain of `out` with the
    /// blocked YASK loop structure, really executing on the host.
    ///
    /// # Errors
    /// Returns binding errors (arity/halo/domain) or parameter errors
    /// (fold mismatch, zero extents).
    pub fn apply(
        &self,
        stencil: &Stencil,
        inputs: &[&Grid3],
        out: &mut Grid3,
    ) -> Result<SweepReport, EngineError> {
        let disabled;
        let prof = match self.profiler {
            Some(p) => p,
            None => {
                disabled = SweepProfiler::disabled();
                &disabled
            }
        };
        let (run, tier, tier_reason) = execute_apply(
            self.pool_ref(),
            stencil,
            inputs,
            out,
            &self.params,
            prof,
            self.tier,
        )?;
        Ok(SweepReport {
            seconds: run.seconds,
            mlups: run.mlups,
            updates: run.updates,
            threads_used: run.threads_used,
            tier,
            tier_reason,
            wavefront_depth: 1,
        })
    }

    /// Performs `wavefront` time steps of `stencil` on the ping-pong
    /// pair `(a, b)` in one skewed sweep; on return `a` holds the newest
    /// time level. `updates`/`mlups` in the report count all
    /// `domain × depth` lattice updates the sweep performed.
    ///
    /// # Errors
    /// Fails for multi-input stencils, binding problems, or invalid
    /// parameters.
    pub fn run_wavefront(
        &self,
        stencil: &Stencil,
        a: &mut Grid3,
        b: &mut Grid3,
    ) -> Result<SweepReport, EngineError> {
        let disabled;
        let prof = match self.profiler {
            Some(p) => p,
            None => {
                disabled = SweepProfiler::disabled();
                &disabled
            }
        };
        let updates = (a.domain_points() * self.params.wavefront) as u64;
        let start = Instant::now();
        let (widest, tier, tier_reason) = execute_wavefront(
            self.pool_ref(),
            stencil,
            a,
            b,
            &self.params,
            prof,
            self.tier,
        )?;
        let seconds = start.elapsed().as_secs_f64();
        Ok(SweepReport {
            seconds,
            mlups: updates as f64 / seconds.max(1e-12) / 1e6,
            updates,
            threads_used: widest,
            tier,
            tier_reason,
            wavefront_depth: self.params.wavefront,
        })
    }
}

/// What one [`SweepRequest`] execution did: the timing of the run plus
/// the tier that actually executed and why the planner picked it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepReport {
    /// Wall time of the sweep.
    pub seconds: f64,
    /// Achieved million lattice updates per second (for wavefront runs,
    /// over all fused time steps).
    pub mlups: f64,
    /// Lattice updates performed (`domain × wavefront_depth`).
    pub updates: u64,
    /// Threads that actually received work (non-empty slabs / widest
    /// per-plane chunk count; `1` on the generic tier).
    pub threads_used: usize,
    /// The specialisation-ladder rung that executed.
    pub tier: Tier,
    /// Why the planner picked [`SweepReport::tier`] — in particular,
    /// why a forced tier was degraded.
    pub tier_reason: &'static str,
    /// Time steps fused in this sweep (`1` for spatial sweeps).
    pub wavefront_depth: usize,
}

impl SweepReport {
    /// Whether the executed tier is a degradation — the planner dropped
    /// below what the fold or a forced policy asked for.
    #[must_use]
    pub fn degraded(&self) -> bool {
        tier_reason_degraded(self.tier_reason)
    }

    /// The legacy [`NativeRun`] view of this report.
    #[must_use]
    pub fn native_run(&self) -> NativeRun {
        NativeRun {
            seconds: self.seconds,
            mlups: self.mlups,
            updates: self.updates,
            threads_used: self.threads_used,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_grid::Fold;
    use yasksite_stencil::builders::{box3d, heat3d, inverter_chain_rhs};

    #[test]
    fn policy_parsing_is_case_insensitive_and_strict() {
        assert_eq!(TierPolicy::parse("auto"), Some(TierPolicy::Auto));
        assert_eq!(TierPolicy::parse("Scalar"), Some(TierPolicy::ForceScalar));
        assert_eq!(TierPolicy::parse(" FOLDED "), Some(TierPolicy::ForceFolded));
        assert_eq!(TierPolicy::parse(""), None);
        assert_eq!(TierPolicy::parse("vector"), None);
        assert_eq!(TierPolicy::parse("folded8"), None);
    }

    #[test]
    fn planner_prefers_folded_for_supported_lane_counts() {
        let s = heat3d(1);
        for lanes in [2usize, 4, 8, 16] {
            let p = TuningParams::new([8, 8, 8], Fold::new(lanes, 1, 1));
            let (tier, _) = plan_tier(&s, &p);
            assert_eq!(tier, Tier::Folded, "lanes={lanes}");
        }
        // Unit fold and odd lane counts fall back to the scalar rows.
        for lanes in [1usize, 3, 5] {
            let p = TuningParams::new([8, 8, 8], Fold::new(lanes, 1, 1));
            let (tier, reason) = plan_tier(&s, &p);
            assert_eq!(tier, Tier::Scalar, "lanes={lanes}");
            assert!(reason.contains("lane count"), "reason: {reason}");
        }
    }

    #[test]
    fn planner_uses_brick_kernel_for_multi_dim_folds() {
        let s = box3d(1);
        for fold in [Fold::new(4, 2, 1), Fold::new(2, 2, 2), Fold::new(1, 2, 1)] {
            let p = TuningParams::new([8, 8, 8], fold);
            let (tier, reason) = plan_tier(&s, &p);
            assert_eq!(tier, Tier::Folded, "fold={fold}");
            assert!(reason.contains("brick"), "reason: {reason}");
        }
        // 3x3x1 has 9 elements: no monomorphised brick kernel.
        let p = TuningParams::new([8, 8, 8], Fold::new(3, 3, 1));
        assert_eq!(plan_tier(&s, &p).0, Tier::Generic);
    }

    #[test]
    fn planner_routes_tapes_by_layout_only() {
        let s = inverter_chain_rhs(5.0, 1.0, 2.0);
        let row = TuningParams::new([8, 1, 1], Fold::new(8, 1, 1));
        assert_eq!(plan_tier(&s, &row).0, Tier::Tape);
        let folded = TuningParams::new([8, 1, 1], Fold::new(4, 2, 1));
        assert_eq!(plan_tier(&s, &folded).0, Tier::Generic);
    }

    #[test]
    fn degraded_reasons_are_classified() {
        let s = heat3d(1);
        // Natural picks are not degradations.
        let row = TuningParams::new([8, 8, 8], Fold::new(8, 1, 1));
        let (_, reason) = plan_tier(&s, &row);
        assert!(!tier_reason_degraded(reason), "{reason}");
        // An unsupported lane count is.
        let odd = TuningParams::new([8, 8, 8], Fold::new(3, 1, 1));
        let (_, reason) = plan_tier(&s, &odd);
        assert!(tier_reason_degraded(reason), "{reason}");
        // Forcing scalar where it exists is a policy choice, not a
        // degradation; forcing it where it cannot run is one.
        let (_, reason) = plan_tier_with(&s, &row, TierPolicy::ForceScalar);
        assert!(!tier_reason_degraded(reason), "{reason}");
        let folded = TuningParams::new([8, 8, 8], Fold::new(4, 2, 1));
        let (tier, reason) = plan_tier_with(&s, &folded, TierPolicy::ForceScalar);
        assert_eq!(tier, Tier::Generic);
        assert!(tier_reason_degraded(reason), "{reason}");
    }

    #[test]
    fn forced_policies_degrade_with_recorded_reasons() {
        let s = heat3d(1);
        let compiled = CompiledStencil::compile(&s);
        // Scalar forced on a row-major fold: honoured.
        let row = TuningParams::new([8, 8, 8], Fold::new(8, 1, 1));
        let (plan, _) = plan_spatial(&compiled, true, &row, TierPolicy::ForceScalar);
        assert_eq!(plan, Plan::Scalar);
        // Scalar forced on a multi-dim fold: no scalar row kernel exists,
        // degrade to generic and say why.
        let folded = TuningParams::new([8, 8, 8], Fold::new(4, 2, 1));
        let (plan, reason) = plan_spatial(&compiled, true, &folded, TierPolicy::ForceScalar);
        assert_eq!(plan, Plan::Generic);
        assert!(reason.contains("row-major"), "reason: {reason}");
        // Folded forced on a unit fold: no lanes to vectorise.
        let unit = TuningParams::new([8, 8, 8], Fold::unit());
        let (plan, reason) = plan_spatial(&compiled, true, &unit, TierPolicy::ForceFolded);
        assert_eq!(plan, Plan::Scalar);
        assert!(reason.contains("lane count"), "reason: {reason}");
        // Brick kernel needs shared grid geometry.
        let (plan, _) = plan_spatial(&compiled, false, &folded, TierPolicy::Auto);
        assert_eq!(plan, Plan::Generic);
    }
}
