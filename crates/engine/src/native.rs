//! Native (host) execution backend.

use std::time::Instant;

use yasksite_grid::Grid3;
use yasksite_stencil::Stencil;

use crate::compile::CompiledStencil;
use crate::error::EngineError;
use crate::params::TuningParams;

/// Result of one native kernel application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NativeRun {
    /// Wall time of the sweep.
    pub seconds: f64,
    /// Achieved million lattice updates per second.
    pub mlups: f64,
    /// Lattice updates performed.
    pub updates: u64,
    /// Threads actually used (1 when the fast path is unavailable).
    pub threads_used: usize,
}

/// Validates that all grids carry the fold the parameters assume.
fn check_folds(inputs: &[&Grid3], out: &Grid3, params: &TuningParams) -> Result<(), EngineError> {
    for g in inputs.iter().copied().chain(std::iter::once(out)) {
        if g.fold() != params.fold {
            return Err(EngineError::BadParams {
                reason: format!(
                    "grid '{}' has fold {}, params say {}",
                    g.name(),
                    g.fold(),
                    params.fold
                ),
            });
        }
    }
    Ok(())
}

/// Applies `stencil` once over the full domain of `out`, using the blocked
/// YASK loop structure with the given tuning parameters, really executing
/// on the host.
///
/// Linear stencils on row-major folds take a vectorisable fast path and
/// honour `params.threads` (domain decomposed into z-slabs at block
/// boundaries); everything else runs through the generic path on one
/// thread.
///
/// # Errors
/// Returns binding errors (arity/halo/domain) or parameter errors
/// (fold mismatch, zero extents).
pub fn apply_native(
    stencil: &Stencil,
    inputs: &[&Grid3],
    out: &mut Grid3,
    params: &TuningParams,
) -> Result<NativeRun, EngineError> {
    stencil.check_bindings(inputs, out)?;
    params
        .validate(out.n())
        .map_err(|reason| EngineError::BadParams { reason })?;
    check_folds(inputs, out, params)?;

    let compiled = CompiledStencil::compile(stencil);
    let updates = out.domain_points() as u64;
    let start = Instant::now();
    let threads_used = match (&compiled, params.row_major()) {
        (CompiledStencil::Linear { terms, constant }, true) => {
            linear_fast_path(terms, *constant, inputs, out, params)
        }
        _ => {
            generic_path(&compiled, inputs, out, params);
            1
        }
    };
    let seconds = start.elapsed().as_secs_f64();
    Ok(NativeRun {
        seconds,
        mlups: updates as f64 / seconds.max(1e-12) / 1e6,
        updates,
        threads_used,
    })
}

/// Row-major storage geometry of a grid.
#[derive(Clone, Copy)]
struct Geom {
    ax: isize,
    ay: isize,
    hx: isize,
    hy: isize,
    hz: isize,
}

impl Geom {
    fn of(g: &Grid3) -> Geom {
        let a = g.alloc();
        let h = g.halo();
        Geom {
            ax: a[0] as isize,
            ay: a[1] as isize,
            hx: h[0] as isize,
            hy: h[1] as isize,
            hz: h[2] as isize,
        }
    }

    #[inline]
    fn row_base(&self, j: isize, k: isize) -> isize {
        ((k + self.hz) * self.ay + (j + self.hy)) * self.ax + self.hx
    }
}

/// Linear combination over row-major storage: blocked loops, threaded over
/// z-slabs. Returns the number of threads used.
fn linear_fast_path(
    terms: &[((usize, [i32; 3]), f64)],
    constant: f64,
    inputs: &[&Grid3],
    out: &mut Grid3,
    params: &TuningParams,
) -> usize {
    let n = out.n();
    let block = params.clipped_block(n);
    // Per-term: input slice index, element offset, coefficient.
    let geoms: Vec<Geom> = inputs.iter().map(|g| Geom::of(g)).collect();
    let term_desc: Vec<(usize, isize, f64)> = terms
        .iter()
        .map(|((g, o), c)| {
            let ge = &geoms[*g];
            let off = (o[2] as isize * ge.ay + o[1] as isize) * ge.ax + o[0] as isize;
            (*g, off, *c)
        })
        .collect();

    // z-slab decomposition at block boundaries.
    let nblocks_z = n[2].div_ceil(block[2]);
    let threads = params.threads.clamp(1, nblocks_z);
    let out_geom = Geom::of(out);
    let plane_elems = (out_geom.ax * out_geom.ay) as usize;

    // Split the output storage into per-slab contiguous plane ranges.
    let mut slab_limits = Vec::with_capacity(threads + 1); // in z-blocks
    for t in 0..=threads {
        slab_limits.push(t * nblocks_z / threads);
    }

    let out_halo_z = out_geom.hz as usize;
    let data = out.as_mut_slice();
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut consumed = 0usize; // plane index consumed so far
        for t in 0..threads {
            let kb0 = slab_limits[t];
            let kb1 = slab_limits[t + 1];
            if kb0 == kb1 {
                continue;
            }
            let k0 = kb0 * block[2];
            let k1 = (kb1 * block[2]).min(n[2]);
            // Storage planes [k0+hz, k1+hz).
            let first_plane = k0 + out_halo_z;
            let last_plane = k1 + out_halo_z;
            let skip = (first_plane - consumed) * plane_elems;
            let take = (last_plane - first_plane) * plane_elems;
            let (before, after) = rest.split_at_mut(skip + take);
            let slab = &mut before[skip..];
            rest = after;
            consumed = last_plane;
            let term_desc = &term_desc;
            let inputs = inputs.to_vec();
            let geoms = geoms.clone();
            let sub = params.sub_block.unwrap_or(block).map(|e| e.max(1));
            scope.spawn(move || {
                let slab_base = (first_plane * plane_elems) as isize;
                for kb in (k0..k1).step_by(block[2]) {
                    let kz1 = (kb + block[2]).min(k1);
                    for jb in (0..n[1]).step_by(block[1]) {
                        let jy1 = (jb + block[1]).min(n[1]);
                        for ib in (0..n[0]).step_by(block[0]) {
                            let ix1 = (ib + block[0]).min(n[0]);
                            for skb in (kb..kz1).step_by(sub[2]) {
                                let skz = (skb + sub[2]).min(kz1);
                                for sjb in (jb..jy1).step_by(sub[1]) {
                                    let sjy = (sjb + sub[1]).min(jy1);
                                    for sib in (ib..ix1).step_by(sub[0]) {
                                        let six = (sib + sub[0]).min(ix1);
                                        for k in skb..skz {
                                            for j in sjb..sjy {
                                                let out_row = out_geom
                                                    .row_base(j as isize, k as isize)
                                                    - slab_base;
                                                let in_rows: Vec<(isize, &[f64], f64)> = term_desc
                                                    .iter()
                                                    .map(|&(g, off, c)| {
                                                        let base = geoms[g]
                                                            .row_base(j as isize, k as isize)
                                                            + off;
                                                        (base, inputs[g].as_slice(), c)
                                                    })
                                                    .collect();
                                                for i in sib..six {
                                                    let mut acc = constant;
                                                    for &(base, src, c) in &in_rows {
                                                        acc +=
                                                            c * src[(base + i as isize) as usize];
                                                    }
                                                    slab[(out_row + i as isize) as usize] = acc;
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            });
        }
    });
    threads
}

/// Generic path: blocked loops through the layout-agnostic accessors.
fn generic_path(
    compiled: &CompiledStencil,
    inputs: &[&Grid3],
    out: &mut Grid3,
    params: &TuningParams,
) {
    let n = out.n();
    let block = params.clipped_block(n);
    for kb in (0..n[2]).step_by(block[2]) {
        let kz1 = (kb + block[2]).min(n[2]);
        for jb in (0..n[1]).step_by(block[1]) {
            let jy1 = (jb + block[1]).min(n[1]);
            for ib in (0..n[0]).step_by(block[0]) {
                let ix1 = (ib + block[0]).min(n[0]);
                for k in kb..kz1 {
                    for j in jb..jy1 {
                        for i in ib..ix1 {
                            let v = compiled.eval_at(inputs, i as isize, j as isize, k as isize);
                            out.set(i as isize, j as isize, k as isize, v);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_grid::Fold;
    use yasksite_stencil::builders::{box3d, heat3d, inverter_chain_rhs, wave2d};

    fn filled(name: &str, n: [usize; 3], halo: [usize; 3], fold: Fold) -> Grid3 {
        let mut g = Grid3::new(name, n, halo, fold);
        g.fill_with(|i, j, k| ((i * 7 + j * 13 + k * 29) % 23) as f64 * 0.125 - 1.0);
        g.fill_halo(0.25);
        g
    }

    fn reference(stencil: &Stencil, inputs: &[&Grid3], n: [usize; 3]) -> Grid3 {
        let mut r = Grid3::new("ref", n, [0, 0, 0], Fold::unit());
        stencil.apply_reference(inputs, &mut r).unwrap();
        r
    }

    #[test]
    fn fast_path_matches_reference() {
        let s = heat3d(1);
        let n = [24, 10, 9];
        let fold = Fold::new(8, 1, 1);
        let u = filled("u", n, [1, 1, 1], fold);
        let mut out = Grid3::new("o", n, [1, 1, 1], fold);
        let p = TuningParams::new([8, 4, 4], fold);
        let run = apply_native(&s, &[&u], &mut out, &p).unwrap();
        assert_eq!(run.updates, 24 * 10 * 9);
        let r = reference(&s, &[&u], n);
        assert!(out.max_abs_diff(&r).unwrap() < 1e-12);
    }

    #[test]
    fn threaded_fast_path_matches_reference() {
        let s = heat3d(1);
        let n = [16, 8, 12];
        let fold = Fold::new(8, 1, 1);
        let u = filled("u", n, [1, 1, 1], fold);
        let r = reference(&s, &[&u], n);
        for threads in [1, 2, 3, 5] {
            let mut out = Grid3::new("o", n, [1, 1, 1], fold);
            let p = TuningParams::new([8, 4, 2], fold).threads(threads);
            let run = apply_native(&s, &[&u], &mut out, &p).unwrap();
            assert!(run.threads_used >= 1 && run.threads_used <= threads.max(1));
            assert!(out.max_abs_diff(&r).unwrap() < 1e-12, "threads={threads}");
        }
    }

    #[test]
    fn folded_layout_generic_path_matches_reference() {
        let s = box3d(1);
        let n = [12, 6, 6];
        let fold = Fold::new(4, 2, 1);
        let u = filled("u", n, [1, 1, 1], fold);
        let mut out = Grid3::new("o", n, [1, 1, 1], fold);
        let p = TuningParams::new([4, 4, 4], fold);
        let run = apply_native(&s, &[&u], &mut out, &p).unwrap();
        assert_eq!(run.threads_used, 1);
        let r = reference(&s, &[&u], n);
        assert!(out.max_abs_diff(&r).unwrap() < 1e-12);
    }

    #[test]
    fn nonlinear_tape_matches_reference() {
        let s = inverter_chain_rhs(5.0, 1.0, 2.0);
        let n = [64, 1, 1];
        let fold = Fold::new(8, 1, 1);
        let u = filled("u", n, [1, 0, 0], fold);
        let mut out = Grid3::new("o", n, [1, 0, 0], fold);
        let p = TuningParams::new([16, 1, 1], fold);
        apply_native(&s, &[&u], &mut out, &p).unwrap();
        let r = reference(&s, &[&u], n);
        assert!(out.max_abs_diff(&r).unwrap() < 1e-12);
    }

    #[test]
    fn two_input_stencil_matches_reference() {
        let s = wave2d(0.3);
        let n = [20, 14, 1];
        let fold = Fold::new(8, 1, 1);
        let u = filled("u", n, [1, 1, 0], fold);
        let um = filled("um", n, [1, 1, 0], fold);
        let mut out = Grid3::new("o", n, [1, 1, 0], fold);
        let p = TuningParams::new([8, 8, 1], fold).threads(2);
        apply_native(&s, &[&u, &um], &mut out, &p).unwrap();
        let r = reference(&s, &[&u, &um], n);
        assert!(out.max_abs_diff(&r).unwrap() < 1e-12);
    }

    #[test]
    fn fold_mismatch_rejected() {
        let s = heat3d(1);
        let u = filled("u", [8, 8, 8], [1, 1, 1], Fold::new(8, 1, 1));
        let mut out = Grid3::new("o", [8, 8, 8], [1, 1, 1], Fold::new(8, 1, 1));
        let p = TuningParams::new([8, 8, 8], Fold::new(4, 2, 1));
        assert!(matches!(
            apply_native(&s, &[&u], &mut out, &p),
            Err(EngineError::BadParams { .. })
        ));
    }

    #[test]
    fn sub_blocks_never_change_results() {
        let s = heat3d(1);
        let n = [19, 11, 9];
        let fold = Fold::new(8, 1, 1);
        let u = filled("u", n, [1, 1, 1], fold);
        let r = reference(&s, &[&u], n);
        for sub in [[4, 2, 2], [1, 1, 1], [32, 32, 32], [5, 3, 2]] {
            let mut out = Grid3::new("o", n, [1, 1, 1], fold);
            let p = TuningParams::new([16, 8, 8], fold)
                .sub_block(sub)
                .threads(2);
            apply_native(&s, &[&u], &mut out, &p).unwrap();
            assert!(out.max_abs_diff(&r).unwrap() < 1e-12, "sub {sub:?}");
        }
    }

    #[test]
    fn block_size_never_changes_results() {
        let s = heat3d(1);
        let n = [17, 9, 7]; // awkward sizes exercise remainder blocks
        let fold = Fold::new(8, 1, 1);
        let u = filled("u", n, [1, 1, 1], fold);
        let r = reference(&s, &[&u], n);
        for block in [[1, 1, 1], [3, 3, 3], [17, 9, 7], [32, 32, 32], [5, 2, 6]] {
            let mut out = Grid3::new("o", n, [1, 1, 1], fold);
            let p = TuningParams::new(block, fold);
            apply_native(&s, &[&u], &mut out, &p).unwrap();
            assert!(out.max_abs_diff(&r).unwrap() < 1e-12, "block {block:?}");
        }
    }
}
