//! Native (host) execution backend.
//!
//! The hot paths here are written so the inner loops are allocation-free
//! and bounds-check-free: term descriptors are gathered once per sweep,
//! each row of output is produced from pre-sliced source rows, and the
//! common stencil arities (2/7/9/27 terms, plus 1) are monomorphised
//! through a const-generic row kernel that LLVM can unroll and
//! vectorise. Threading goes through the persistent [`ExecPool`] instead
//! of spawning OS threads per sweep.

use std::time::Instant;

use yasksite_grid::Grid3;
use yasksite_stencil::Stencil;

use crate::compile::{CompiledStencil, Tape};
use crate::error::EngineError;
use crate::fold_tier::brick_fast_path;
use crate::params::{chunk_ranges, TuningParams};
use crate::pool::{ExecPool, ScopedJob};
use crate::profile::SweepProfiler;
use crate::sweep::{plan_spatial, Plan, Tier, TierPolicy};

/// Result of one native kernel application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NativeRun {
    /// Wall time of the sweep.
    pub seconds: f64,
    /// Achieved million lattice updates per second.
    pub mlups: f64,
    /// Lattice updates performed.
    pub updates: u64,
    /// Threads that actually received work: the number of non-empty
    /// slabs the sweep was decomposed into (≤ `params.threads`; small
    /// domains produce fewer slabs than requested threads). Row-major
    /// layouts split into z-plane slabs, the folded brick tier into
    /// brick-z slabs.
    ///
    /// The layout-generic path reports `1` deliberately: it walks the
    /// grid through per-point accessors with no contiguous storage
    /// window to hand each worker, so it runs single-threaded and says
    /// so rather than echoing `params.threads` back.
    pub threads_used: usize,
}

/// Validates that all grids carry the fold the parameters assume.
fn check_folds(inputs: &[&Grid3], out: &Grid3, params: &TuningParams) -> Result<(), EngineError> {
    for g in inputs.iter().copied().chain(std::iter::once(out)) {
        if g.fold() != params.fold {
            return Err(EngineError::BadParams {
                reason: format!(
                    "grid '{}' has fold {}, params say {}",
                    g.name(),
                    g.fold(),
                    params.fold
                ),
            });
        }
    }
    Ok(())
}

/// The spatial-sweep executor behind [`crate::SweepRequest::apply`]:
/// validates, compiles, plans the tier under `policy`, and dispatches to
/// the matching kernel.
///
/// Tier selection never changes results — every tier computes each
/// output point with the identical FP operation order. Threaded tiers
/// honour `params.threads` with a decomposition that depends only on
/// `(domain, params.threads)`, never on the pool width, so results are
/// bitwise identical for any pool.
pub(crate) fn execute_apply(
    pool: &ExecPool,
    stencil: &Stencil,
    inputs: &[&Grid3],
    out: &mut Grid3,
    params: &TuningParams,
    prof: &SweepProfiler,
    policy: TierPolicy,
) -> Result<(NativeRun, Tier, &'static str), EngineError> {
    stencil.check_bindings(inputs, out)?;
    params
        .validate(out.n())
        .map_err(|reason| EngineError::BadParams { reason })?;
    check_folds(inputs, out, params)?;

    let t_compile = prof.start();
    let compiled = CompiledStencil::compile(stencil);
    prof.phase_done("compile", t_compile);
    let geometry_shared = inputs
        .iter()
        .all(|g| g.alloc() == out.alloc() && g.halo() == out.halo());
    let (plan, reason) = plan_spatial(&compiled, geometry_shared, params, policy);
    let updates = out.domain_points() as u64;
    prof.pool_window(pool.stats());
    let t_sweep = prof.start();
    let start = Instant::now();
    let threads_used = match plan {
        Plan::Lanes(lanes) => {
            let (terms, constant) = compiled.linear_terms().expect("lane plan implies linear");
            linear_fast_path(pool, terms, constant, inputs, out, params, prof, lanes)
        }
        Plan::Scalar => {
            let (terms, constant) = compiled.linear_terms().expect("scalar plan implies linear");
            linear_fast_path(pool, terms, constant, inputs, out, params, prof, 0)
        }
        Plan::Brick(elems) => {
            let (terms, constant) = compiled.linear_terms().expect("brick plan implies linear");
            match elems {
                2 => brick_fast_path::<2>(pool, terms, constant, inputs, out, params, prof),
                4 => brick_fast_path::<4>(pool, terms, constant, inputs, out, params, prof),
                8 => brick_fast_path::<8>(pool, terms, constant, inputs, out, params, prof),
                16 => brick_fast_path::<16>(pool, terms, constant, inputs, out, params, prof),
                _ => unreachable!("planner only emits supported brick sizes"),
            }
        }
        Plan::Tape => {
            let CompiledStencil::Tape(tape) = &compiled else {
                unreachable!("tape plan implies tape stencil")
            };
            tape_fast_path(pool, tape, inputs, out, params, prof)
        }
        Plan::Generic => {
            generic_path(&compiled, inputs, out, params);
            1
        }
    };
    let seconds = start.elapsed().as_secs_f64();
    prof.phase_done("sweep", t_sweep);
    prof.pool_window(pool.stats());
    Ok((
        NativeRun {
            seconds,
            mlups: updates as f64 / seconds.max(1e-12) / 1e6,
            updates,
            threads_used,
        },
        plan.tier(),
        reason,
    ))
}

/// Row-major storage geometry of a grid.
#[derive(Clone, Copy)]
pub(crate) struct Geom {
    pub(crate) ax: isize,
    pub(crate) ay: isize,
    pub(crate) hx: isize,
    pub(crate) hy: isize,
    pub(crate) hz: isize,
}

impl Geom {
    pub(crate) fn of(g: &Grid3) -> Geom {
        let a = g.alloc();
        let h = g.halo();
        Geom {
            ax: a[0] as isize,
            ay: a[1] as isize,
            hx: h[0] as isize,
            hy: h[1] as isize,
            hz: h[2] as isize,
        }
    }

    /// Storage index of domain point `(0, j, k)`.
    #[inline]
    pub(crate) fn row_base(&self, j: isize, k: isize) -> isize {
        ((k + self.hz) * self.ay + (j + self.hy)) * self.ax + self.hx
    }

    /// Element offset of a stencil access `(dx, dy, dz)`.
    #[inline]
    pub(crate) fn offset_of(&self, o: [i32; 3]) -> isize {
        (o[2] as isize * self.ay + o[1] as isize) * self.ax + o[0] as isize
    }
}

/// A linear stencil lowered against a concrete set of input grids: one
/// geometry/offset/coefficient/slice record per term, gathered **once**
/// per sweep so the per-row work is pure arithmetic on pre-resolved
/// slices.
pub(crate) struct LinearKernel<'a> {
    geoms: Vec<Geom>,
    offs: Vec<isize>,
    coeffs: Vec<f64>,
    srcs: Vec<&'a [f64]>,
    constant: f64,
    /// Lane width of the folded lane kernel (`0` = scalar row kernels).
    /// Set by the tier planner; the supported widths are monomorphised
    /// in [`LinearKernel::row`].
    lanes: usize,
}

impl<'a> LinearKernel<'a> {
    pub(crate) fn build(
        terms: &[((usize, [i32; 3]), f64)],
        constant: f64,
        inputs: &[&'a Grid3],
        lanes: usize,
    ) -> LinearKernel<'a> {
        let input_geoms: Vec<Geom> = inputs.iter().map(|g| Geom::of(g)).collect();
        let mut k = LinearKernel {
            geoms: Vec::with_capacity(terms.len()),
            offs: Vec::with_capacity(terms.len()),
            coeffs: Vec::with_capacity(terms.len()),
            srcs: Vec::with_capacity(terms.len()),
            constant,
            lanes,
        };
        for ((g, o), c) in terms {
            let ge = input_geoms[*g];
            k.geoms.push(ge);
            k.offs.push(ge.offset_of(*o));
            k.coeffs.push(*c);
            k.srcs.push(inputs[*g].as_slice());
        }
        k
    }

    /// Applies the kernel over domain points `kr × jr × ir` with the
    /// YASK block/sub-block traversal, writing through `sink`. The caller
    /// guarantees the sink's window covers every written row.
    pub(crate) fn apply_blocked(
        &self,
        sink: &mut Sink<'_>,
        kr: (usize, usize),
        jr: (usize, usize),
        ir: (usize, usize),
        block: [usize; 3],
        sub: [usize; 3],
    ) {
        blocked_nest(kr, jr, ir, block, sub, |k, j, i0, i1| {
            self.row(sink, k, j, i0, i1);
        });
    }

    /// One output row segment: the folded lane kernel when the planner
    /// set a lane width, else the monomorphised scalar kernel for the
    /// common arities, the dynamic loop otherwise. The dispatch is a
    /// perfectly predicted branch per row; the inner loops carry no
    /// allocation and no bounds checks.
    #[inline]
    fn row(&self, sink: &mut Sink<'_>, k: usize, j: usize, i0: usize, i1: usize) {
        match self.lanes {
            2 => self.row_lanes::<2>(sink, k, j, i0, i1),
            4 => self.row_lanes::<4>(sink, k, j, i0, i1),
            8 => self.row_lanes::<8>(sink, k, j, i0, i1),
            16 => self.row_lanes::<16>(sink, k, j, i0, i1),
            _ => match self.coeffs.len() {
                1 => self.row_spec::<1>(sink, k, j, i0, i1),
                2 => self.row_spec::<2>(sink, k, j, i0, i1),
                7 => self.row_spec::<7>(sink, k, j, i0, i1),
                9 => self.row_spec::<9>(sink, k, j, i0, i1),
                27 => self.row_spec::<27>(sink, k, j, i0, i1),
                _ => self.row_dyn(sink, k, j, i0, i1),
            },
        }
    }

    /// Folded lane kernel: processes the row in `L`-wide column chunks
    /// with explicit wide accumulators (`[f64; L]` blocks LLVM lowers to
    /// vector registers), working for *any* term count — including the
    /// dynamic arities the scalar ladder relegates to [`Self::row_dyn`]'s
    /// read-modify-write loop. Terms are consumed in stripes of up to 16
    /// so per-term row bases live in fixed stack arrays (no allocation);
    /// within a chunk the accumulators stay in registers across the whole
    /// stripe, so `dst` is touched once per stripe instead of once per
    /// term. The per-point accumulation order
    /// (`constant, +term₀, +term₁, …`) is strictly preserved across
    /// stripes and the scalar tail, so results are bitwise identical to
    /// the scalar kernels.
    fn row_lanes<const L: usize>(
        &self,
        sink: &mut Sink<'_>,
        k: usize,
        j: usize,
        i0: usize,
        i1: usize,
    ) {
        const STRIPE: usize = 16;
        let len = i1 - i0;
        let ob = (sink.geom.row_base(j as isize, k as isize) - sink.base) as usize + i0;
        let dst = &mut sink.win[ob..ob + len];
        let nt = self.coeffs.len();
        if nt == 0 {
            dst.fill(self.constant);
            return;
        }
        let mut t0 = 0usize;
        while t0 < nt {
            let t1 = (t0 + STRIPE).min(nt);
            let ns = t1 - t0;
            // Pre-slice every term row of this stripe to the exact
            // segment length: the chunk loops below index fixed-length
            // local slices, so the bounds checks vanish and the source
            // pointers stay in registers instead of being re-fetched
            // from the descriptor Vecs per chunk.
            let mut rows: [&[f64]; STRIPE] = [&[]; STRIPE];
            let mut coeffs = [0.0f64; STRIPE];
            for s in 0..ns {
                let base = (self.geoms[t0 + s].row_base(j as isize, k as isize) + self.offs[t0 + s])
                    as usize
                    + i0;
                rows[s] = &self.srcs[t0 + s][base..base + len];
                coeffs[s] = self.coeffs[t0 + s];
            }
            let first = t0 == 0;
            let mut ci = 0usize;
            // Cluster of two folds per iteration: two independent wide
            // accumulators hide FMA latency across the term chain and
            // halve the loop overhead. Each point still accumulates its
            // terms in stripe order, so clustering never changes a bit.
            while ci + 2 * L <= len {
                let mut a0 = [self.constant; L];
                let mut a1 = [self.constant; L];
                if !first {
                    a0.copy_from_slice(&dst[ci..ci + L]);
                    a1.copy_from_slice(&dst[ci + L..ci + 2 * L]);
                }
                for s in 0..ns {
                    let src = &rows[s][ci..ci + 2 * L];
                    let c = coeffs[s];
                    for l in 0..L {
                        a0[l] += c * src[l];
                    }
                    for l in 0..L {
                        a1[l] += c * src[L + l];
                    }
                }
                dst[ci..ci + L].copy_from_slice(&a0);
                dst[ci + L..ci + 2 * L].copy_from_slice(&a1);
                ci += 2 * L;
            }
            while ci + L <= len {
                let mut acc = [self.constant; L];
                if !first {
                    acc.copy_from_slice(&dst[ci..ci + L]);
                }
                for s in 0..ns {
                    let src = &rows[s][ci..ci + L];
                    let c = coeffs[s];
                    for (a, v) in acc.iter_mut().zip(src) {
                        *a += c * v;
                    }
                }
                dst[ci..ci + L].copy_from_slice(&acc);
                ci += L;
            }
            // Scalar tail for the sub-lane remainder, same op order.
            for (di, d) in dst.iter_mut().enumerate().skip(ci) {
                let mut acc = if first { self.constant } else { *d };
                for s in 0..ns {
                    acc += coeffs[s] * rows[s][di];
                }
                *d = acc;
            }
            t0 = t1;
        }
    }

    /// Monomorphised row kernel for a compile-time arity: all term rows
    /// are sliced to the exact segment length up front, so the i-loop is
    /// an unrollable fused multiply-add chain over `T` streams.
    #[inline]
    fn row_spec<const T: usize>(
        &self,
        sink: &mut Sink<'_>,
        k: usize,
        j: usize,
        i0: usize,
        i1: usize,
    ) {
        let len = i1 - i0;
        let ob = (sink.geom.row_base(j as isize, k as isize) - sink.base) as usize + i0;
        let dst = &mut sink.win[ob..ob + len];
        let mut rows: [&[f64]; T] = [&[]; T];
        for (((row, ge), off), src) in rows
            .iter_mut()
            .zip(&self.geoms)
            .zip(&self.offs)
            .zip(&self.srcs)
        {
            let base = (ge.row_base(j as isize, k as isize) + off) as usize + i0;
            *row = &src[base..base + len];
        }
        let mut coeffs = [0.0f64; T];
        coeffs.copy_from_slice(&self.coeffs);
        let constant = self.constant;
        for (di, d) in dst.iter_mut().enumerate() {
            let mut acc = constant;
            for t in 0..T {
                acc += coeffs[t] * rows[t][di];
            }
            *d = acc;
        }
    }

    /// Dynamic-arity fallback: initialises the row to the constant, then
    /// streams one term at a time. The additions hit the accumulator in
    /// the same order as the specialised kernel, so both produce bitwise
    /// identical results.
    fn row_dyn(&self, sink: &mut Sink<'_>, k: usize, j: usize, i0: usize, i1: usize) {
        let len = i1 - i0;
        let ob = (sink.geom.row_base(j as isize, k as isize) - sink.base) as usize + i0;
        let dst = &mut sink.win[ob..ob + len];
        dst.fill(self.constant);
        for t in 0..self.coeffs.len() {
            let base =
                (self.geoms[t].row_base(j as isize, k as isize) + self.offs[t]) as usize + i0;
            let src = &self.srcs[t][base..base + len];
            let c = self.coeffs[t];
            for (d, s) in dst.iter_mut().zip(src) {
                *d += c * s;
            }
        }
    }
}

/// The output window a kernel job writes into: a contiguous slice of
/// output storage, the absolute storage index of its first element, and
/// the full output geometry (row addressing stays absolute; `base` maps
/// it into the window).
pub(crate) struct Sink<'w> {
    pub(crate) win: &'w mut [f64],
    pub(crate) base: isize,
    pub(crate) geom: Geom,
}

/// The YASK block / sub-block loop nest over `kr × jr × ir`, invoking
/// `row(k, j, i0, i1)` for every contiguous x-segment, x-innermost.
#[inline]
fn blocked_nest(
    kr: (usize, usize),
    jr: (usize, usize),
    ir: (usize, usize),
    block: [usize; 3],
    sub: [usize; 3],
    mut row: impl FnMut(usize, usize, usize, usize),
) {
    for kb in (kr.0..kr.1).step_by(block[2]) {
        let kz1 = (kb + block[2]).min(kr.1);
        for jb in (jr.0..jr.1).step_by(block[1]) {
            let jy1 = (jb + block[1]).min(jr.1);
            for ib in (ir.0..ir.1).step_by(block[0]) {
                let ix1 = (ib + block[0]).min(ir.1);
                for skb in (kb..kz1).step_by(sub[2]) {
                    let skz = (skb + sub[2]).min(kz1);
                    for sjb in (jb..jy1).step_by(sub[1]) {
                        let sjy = (sjb + sub[1]).min(jy1);
                        for sib in (ib..ix1).step_by(sub[0]) {
                            let six = (sib + sub[0]).min(ix1);
                            for k in skb..skz {
                                for j in sjb..sjy {
                                    row(k, j, sib, six);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// A z-slab of the output: domain k-range plus the matching contiguous
/// window of output storage.
struct Slab<'w> {
    win: &'w mut [f64],
    win_base: isize,
    k0: usize,
    k1: usize,
}

/// Splits the output storage into per-slab contiguous plane windows, one
/// per non-empty z-block range from [`chunk_ranges`]. The decomposition
/// depends only on `(n, block, threads)`, never on the pool width.
fn split_slabs<'w>(
    data: &'w mut [f64],
    out_geom: Geom,
    n: [usize; 3],
    block_z: usize,
    threads: usize,
) -> Vec<Slab<'w>> {
    let nblocks_z = n[2].div_ceil(block_z);
    let plane = (out_geom.ax * out_geom.ay) as usize;
    let hz = out_geom.hz as usize;
    let mut slabs = Vec::new();
    let mut rest = data;
    let mut consumed = 0usize; // storage planes consumed so far
    for (kb0, kb1) in chunk_ranges(nblocks_z, threads) {
        let k0 = kb0 * block_z;
        let k1 = (kb1 * block_z).min(n[2]);
        let first_plane = k0 + hz;
        let last_plane = k1 + hz;
        let skip = (first_plane - consumed) * plane;
        let take = (last_plane - first_plane) * plane;
        let (before, after) = rest.split_at_mut(skip + take);
        rest = after;
        consumed = last_plane;
        slabs.push(Slab {
            win: &mut before[skip..],
            win_base: (first_plane * plane) as isize,
            k0,
            k1,
        });
    }
    slabs
}

/// Linear combination over row-major storage: blocked loops, threaded
/// over z-slabs on the pool. `lanes` picks the folded lane kernel
/// (`0` = scalar rows). Returns the number of slabs that received work
/// (= threads used).
#[allow(clippy::too_many_arguments)] // internal executor; two call sites
fn linear_fast_path(
    pool: &ExecPool,
    terms: &[((usize, [i32; 3]), f64)],
    constant: f64,
    inputs: &[&Grid3],
    out: &mut Grid3,
    params: &TuningParams,
    prof: &SweepProfiler,
    lanes: usize,
) -> usize {
    let n = out.n();
    let block = params.clipped_block(n);
    let sub = params.sub_block.unwrap_or(block).map(|e| e.max(1));
    let kernel = LinearKernel::build(terms, constant, inputs, lanes);
    let out_geom = Geom::of(out);
    let slabs = split_slabs(out.as_mut_slice(), out_geom, n, block[2], params.threads);
    let used = slabs.len();
    let kernel = &kernel;
    let jobs: Vec<ScopedJob<'_>> = slabs
        .into_iter()
        .map(|slab| {
            Box::new(move || {
                let t0 = prof.start();
                let mut sink = Sink {
                    win: slab.win,
                    base: slab.win_base,
                    geom: out_geom,
                };
                kernel.apply_blocked(
                    &mut sink,
                    (slab.k0, slab.k1),
                    (0, n[1]),
                    (0, n[0]),
                    block,
                    sub,
                );
                prof.chunk_done(t0);
            }) as ScopedJob<'_>
        })
        .collect();
    pool.run(jobs);
    used
}

/// Tape stencils on row-major storage: the same z-slab threading as the
/// linear path, with the interpreter fed through direct row addressing
/// instead of per-point `Grid3::get`. Per-slab scratch (access bases and
/// values) is allocated once per job, outside the loops.
fn tape_fast_path(
    pool: &ExecPool,
    tape: &Tape,
    inputs: &[&Grid3],
    out: &mut Grid3,
    params: &TuningParams,
    prof: &SweepProfiler,
) -> usize {
    let n = out.n();
    let block = params.clipped_block(n);
    let sub = params.sub_block.unwrap_or(block).map(|e| e.max(1));
    // Per access slot: geometry, element offset, source slice.
    let slots: Vec<(Geom, isize, &[f64])> = tape
        .accesses()
        .iter()
        .map(|(g, o)| {
            let ge = Geom::of(inputs[*g]);
            (ge, ge.offset_of(*o), inputs[*g].as_slice())
        })
        .collect();
    let out_geom = Geom::of(out);
    let slabs = split_slabs(out.as_mut_slice(), out_geom, n, block[2], params.threads);
    let used = slabs.len();
    let slots = &slots;
    let jobs: Vec<ScopedJob<'_>> = slabs
        .into_iter()
        .map(|slab| {
            Box::new(move || {
                let t0 = prof.start();
                let mut bases = vec![0usize; slots.len()];
                let mut vals = vec![0.0f64; slots.len()];
                let win = slab.win;
                blocked_nest(
                    (slab.k0, slab.k1),
                    (0, n[1]),
                    (0, n[0]),
                    block,
                    sub,
                    |k, j, i0, i1| {
                        for (s, &(ge, off, _)) in slots.iter().enumerate() {
                            bases[s] = (ge.row_base(j as isize, k as isize) + off) as usize;
                        }
                        let ob =
                            (out_geom.row_base(j as isize, k as isize) - slab.win_base) as usize;
                        for i in i0..i1 {
                            for (s, &(_, _, src)) in slots.iter().enumerate() {
                                vals[s] = src[bases[s] + i];
                            }
                            win[ob + i] = tape.eval(&vals);
                        }
                    },
                );
                prof.chunk_done(t0);
            }) as ScopedJob<'_>
        })
        .collect();
    pool.run(jobs);
    used
}

/// Generic path: blocked loops through the layout-agnostic accessors.
/// Single-threaded by design — folded layouts scatter a row across
/// bricks, so there is no contiguous storage window to hand each worker
/// (see [`NativeRun::threads_used`]).
fn generic_path(
    compiled: &CompiledStencil,
    inputs: &[&Grid3],
    out: &mut Grid3,
    params: &TuningParams,
) {
    let n = out.n();
    let block = params.clipped_block(n);
    for kb in (0..n[2]).step_by(block[2]) {
        let kz1 = (kb + block[2]).min(n[2]);
        for jb in (0..n[1]).step_by(block[1]) {
            let jy1 = (jb + block[1]).min(n[1]);
            for ib in (0..n[0]).step_by(block[0]) {
                let ix1 = (ib + block[0]).min(n[0]);
                for k in kb..kz1 {
                    for j in jb..jy1 {
                        for i in ib..ix1 {
                            let v = compiled.eval_at(inputs, i as isize, j as isize, k as isize);
                            out.set(i as isize, j as isize, k as isize, v);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{SweepRequest, Tier};
    use yasksite_grid::Fold;
    use yasksite_stencil::builders::{box3d, heat3d, inverter_chain_rhs, wave2d};

    fn filled(name: &str, n: [usize; 3], halo: [usize; 3], fold: Fold) -> Grid3 {
        let mut g = Grid3::new(name, n, halo, fold);
        g.fill_with(|i, j, k| ((i * 7 + j * 13 + k * 29) % 23) as f64 * 0.125 - 1.0);
        g.fill_halo(0.25);
        g
    }

    fn reference(stencil: &Stencil, inputs: &[&Grid3], n: [usize; 3]) -> Grid3 {
        let mut r = Grid3::new("ref", n, [0, 0, 0], Fold::unit());
        stencil.apply_reference(inputs, &mut r).unwrap();
        r
    }

    /// Runs a spatial sweep under an explicit tier policy (pinned so the
    /// assertions hold under any `YASKSITE_FORCE_TIER` environment).
    fn sweep(
        stencil: &Stencil,
        inputs: &[&Grid3],
        out: &mut Grid3,
        p: &TuningParams,
        policy: TierPolicy,
    ) -> crate::sweep::SweepReport {
        SweepRequest::new(p)
            .tier(policy)
            .apply(stencil, inputs, out)
            .unwrap()
    }

    #[test]
    fn fast_path_matches_reference() {
        let s = heat3d(1);
        let n = [24, 10, 9];
        let fold = Fold::new(8, 1, 1);
        let u = filled("u", n, [1, 1, 1], fold);
        let r = reference(&s, &[&u], n);
        let p = TuningParams::new([8, 4, 4], fold);
        for policy in [TierPolicy::ForceScalar, TierPolicy::ForceFolded] {
            let mut out = Grid3::new("o", n, [1, 1, 1], fold);
            let run = sweep(&s, &[&u], &mut out, &p, policy);
            assert_eq!(run.updates, 24 * 10 * 9);
            assert!(out.max_abs_diff(&r).unwrap() < 1e-12, "{policy:?}");
        }
    }

    #[test]
    fn folded_lane_tier_is_bitwise_identical_to_scalar_tier() {
        // Every supported lane count, specialised and dynamic arities,
        // awkward row lengths (remainder tails), multiple threads.
        for (s, halo) in [
            (heat3d(1), [1, 1, 1]), // 7 terms: specialised scalar row
            (box3d(1), [1, 1, 1]),  // 27 terms: specialised scalar row
            (heat3d(2), [2, 2, 2]), // 13 terms: dynamic scalar row
        ] {
            let n = [21, 7, 6];
            for lanes in [2usize, 4, 8, 16] {
                let fold = Fold::new(lanes, 1, 1);
                let u = filled("u", n, halo, fold);
                let p = TuningParams::new([9, 4, 3], fold).threads(2);
                let mut scalar = Grid3::new("s", n, halo, fold);
                let rs = sweep(&s, &[&u], &mut scalar, &p, TierPolicy::ForceScalar);
                assert_eq!(rs.tier, Tier::Scalar);
                let mut folded = Grid3::new("f", n, halo, fold);
                let rf = sweep(&s, &[&u], &mut folded, &p, TierPolicy::ForceFolded);
                assert_eq!(rf.tier, Tier::Folded, "lanes={lanes}");
                assert_eq!(
                    scalar.max_abs_diff(&folded).unwrap(),
                    0.0,
                    "stencil {} lanes {lanes} diverged",
                    s.name()
                );
                assert!(folded.max_abs_diff(&reference(&s, &[&u], n)).unwrap() < 1e-12);
            }
        }
    }

    #[test]
    fn threaded_fast_path_matches_reference() {
        let s = heat3d(1);
        let n = [16, 8, 12];
        let fold = Fold::new(8, 1, 1);
        let u = filled("u", n, [1, 1, 1], fold);
        let r = reference(&s, &[&u], n);
        for threads in [1, 2, 3, 5] {
            let mut out = Grid3::new("o", n, [1, 1, 1], fold);
            let p = TuningParams::new([8, 4, 2], fold).threads(threads);
            let run = sweep(&s, &[&u], &mut out, &p, TierPolicy::Auto);
            assert!(run.threads_used >= 1 && run.threads_used <= threads.max(1));
            assert!(out.max_abs_diff(&r).unwrap() < 1e-12, "threads={threads}");
        }
    }

    #[test]
    fn threads_used_counts_nonempty_slabs_only() {
        // n_z = 4 with block_z = 2 gives 2 z-blocks: asking for 8 threads
        // must report 2 slabs of real work, not 8.
        let s = heat3d(1);
        let n = [16, 4, 4];
        let fold = Fold::new(8, 1, 1);
        let u = filled("u", n, [1, 1, 1], fold);
        let mut out = Grid3::new("o", n, [1, 1, 1], fold);
        let p = TuningParams::new([16, 4, 2], fold).threads(8);
        let run = sweep(&s, &[&u], &mut out, &p, TierPolicy::Auto);
        assert_eq!(run.threads_used, 2);
        let r = reference(&s, &[&u], n);
        assert!(out.max_abs_diff(&r).unwrap() < 1e-12);
    }

    #[test]
    fn private_pool_matches_global_pool_bitwise() {
        let s = heat3d(1);
        let n = [24, 12, 10];
        let fold = Fold::new(8, 1, 1);
        let u = filled("u", n, [1, 1, 1], fold);
        let p = TuningParams::new([8, 4, 2], fold).threads(4);
        let mut a = Grid3::new("a", n, [1, 1, 1], fold);
        let mut b = Grid3::new("b", n, [1, 1, 1], fold);
        SweepRequest::new(&p).apply(&s, &[&u], &mut a).unwrap();
        let small = ExecPool::new(1);
        SweepRequest::new(&p)
            .pool(&small)
            .apply(&s, &[&u], &mut b)
            .unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.0);
    }

    #[test]
    fn brick_tier_matches_reference_and_generic_path_bitwise() {
        // Multi-dimensional folds used to fall back to the per-point
        // generic path; the brick kernel must reproduce it bitwise and
        // thread over brick-z slabs.
        for fold in [Fold::new(4, 2, 1), Fold::new(2, 2, 2), Fold::new(1, 2, 1)] {
            let s = box3d(1);
            let n = [12, 6, 6];
            let u = filled("u", n, [1, 1, 1], fold);
            let p = TuningParams::new([4, 4, 4], fold);
            let mut gen = Grid3::new("g", n, [1, 1, 1], fold);
            let rg = sweep(&s, &[&u], &mut gen, &p, TierPolicy::ForceScalar);
            assert_eq!(rg.tier, Tier::Generic, "no scalar rows on {fold}");
            assert_eq!(rg.threads_used, 1);
            let mut brick = Grid3::new("b", n, [1, 1, 1], fold);
            let rb = sweep(&s, &[&u], &mut brick, &p, TierPolicy::Auto);
            assert_eq!(rb.tier, Tier::Folded, "fold={fold}");
            assert_eq!(gen.max_abs_diff(&brick).unwrap(), 0.0, "fold={fold}");
            assert!(brick.max_abs_diff(&reference(&s, &[&u], n)).unwrap() < 1e-12);
            // Threaded brick runs stay bitwise identical and report the
            // brick-z slab count.
            for threads in [2usize, 3, 8] {
                let mut t = Grid3::new("t", n, [1, 1, 1], fold);
                let rt = sweep(
                    &s,
                    &[&u],
                    &mut t,
                    &p.clone().threads(threads),
                    TierPolicy::Auto,
                );
                assert_eq!(rt.tier, Tier::Folded);
                assert!(rt.threads_used >= 1 && rt.threads_used <= threads);
                assert_eq!(
                    brick.max_abs_diff(&t).unwrap(),
                    0.0,
                    "fold={fold} t={threads}"
                );
            }
        }
    }

    #[test]
    fn brick_tier_leaves_halo_untouched() {
        let s = heat3d(1);
        let n = [10, 6, 5];
        let fold = Fold::new(4, 2, 1);
        let u = filled("u", n, [1, 1, 1], fold);
        let mut out = Grid3::new("o", n, [1, 1, 1], fold);
        out.fill_halo(7.5);
        let p = TuningParams::new([4, 4, 4], fold).threads(2);
        let run = sweep(&s, &[&u], &mut out, &p, TierPolicy::Auto);
        assert_eq!(run.tier, Tier::Folded);
        let h = out.halo().map(|e| e as isize);
        let nn = out.n().map(|e| e as isize);
        for k in -h[2]..nn[2] + h[2] {
            for j in -h[1]..nn[1] + h[1] {
                for i in -h[0]..nn[0] + h[0] {
                    let inside = i >= 0 && i < nn[0] && j >= 0 && j < nn[1] && k >= 0 && k < nn[2];
                    if !inside {
                        assert_eq!(out.get(i, j, k), 7.5, "halo clobbered at ({i},{j},{k})");
                    }
                }
            }
        }
    }

    #[test]
    fn brick_tier_handles_two_input_stencils() {
        let s = wave2d(0.3);
        let n = [12, 10, 1];
        let fold = Fold::new(2, 2, 1);
        let u = filled("u", n, [1, 1, 0], fold);
        let um = filled("um", n, [1, 1, 0], fold);
        let mut out = Grid3::new("o", n, [1, 1, 0], fold);
        let p = TuningParams::new([8, 8, 1], fold).threads(2);
        let run = sweep(&s, &[&u, &um], &mut out, &p, TierPolicy::Auto);
        assert_eq!(run.tier, Tier::Folded);
        let r = reference(&s, &[&u, &um], n);
        assert!(out.max_abs_diff(&r).unwrap() < 1e-12);
    }

    #[test]
    fn nonlinear_tape_matches_reference() {
        let s = inverter_chain_rhs(5.0, 1.0, 2.0);
        let n = [64, 1, 1];
        let fold = Fold::new(8, 1, 1);
        let u = filled("u", n, [1, 0, 0], fold);
        let mut out = Grid3::new("o", n, [1, 0, 0], fold);
        let p = TuningParams::new([16, 1, 1], fold);
        let run = sweep(&s, &[&u], &mut out, &p, TierPolicy::Auto);
        assert_eq!(run.tier, Tier::Tape);
        let r = reference(&s, &[&u], n);
        assert!(out.max_abs_diff(&r).unwrap() < 1e-12);
    }

    #[test]
    fn threaded_tape_path_matches_single_thread_bitwise() {
        let s = inverter_chain_rhs(5.0, 1.0, 2.0);
        let n = [32, 4, 6];
        let fold = Fold::new(8, 1, 1);
        let u = filled("u", n, [1, 1, 1], fold);
        let p1 = TuningParams::new([16, 2, 2], fold);
        let mut one = Grid3::new("o1", n, [1, 1, 1], fold);
        let r1 = sweep(&s, &[&u], &mut one, &p1, TierPolicy::Auto);
        assert_eq!(r1.threads_used, 1);
        for threads in [2, 3, 4] {
            let mut many = Grid3::new("om", n, [1, 1, 1], fold);
            let p = p1.clone().threads(threads);
            let run = sweep(&s, &[&u], &mut many, &p, TierPolicy::Auto);
            assert!(run.threads_used > 1, "tape path must thread over slabs");
            assert_eq!(one.max_abs_diff(&many).unwrap(), 0.0, "threads={threads}");
        }
    }

    #[test]
    fn two_input_stencil_matches_reference() {
        let s = wave2d(0.3);
        let n = [20, 14, 1];
        let fold = Fold::new(8, 1, 1);
        let u = filled("u", n, [1, 1, 0], fold);
        let um = filled("um", n, [1, 1, 0], fold);
        let mut out = Grid3::new("o", n, [1, 1, 0], fold);
        let p = TuningParams::new([8, 8, 1], fold).threads(2);
        sweep(&s, &[&u, &um], &mut out, &p, TierPolicy::Auto);
        let r = reference(&s, &[&u, &um], n);
        assert!(out.max_abs_diff(&r).unwrap() < 1e-12);
    }

    #[test]
    fn fold_mismatch_rejected() {
        let s = heat3d(1);
        let u = filled("u", [8, 8, 8], [1, 1, 1], Fold::new(8, 1, 1));
        let mut out = Grid3::new("o", [8, 8, 8], [1, 1, 1], Fold::new(8, 1, 1));
        let p = TuningParams::new([8, 8, 8], Fold::new(4, 2, 1));
        assert!(matches!(
            SweepRequest::new(&p).apply(&s, &[&u], &mut out),
            Err(EngineError::BadParams { .. })
        ));
    }

    #[test]
    fn sub_blocks_never_change_results() {
        let s = heat3d(1);
        let n = [19, 11, 9];
        let fold = Fold::new(8, 1, 1);
        let u = filled("u", n, [1, 1, 1], fold);
        let r = reference(&s, &[&u], n);
        for sub in [[4, 2, 2], [1, 1, 1], [32, 32, 32], [5, 3, 2]] {
            let mut out = Grid3::new("o", n, [1, 1, 1], fold);
            let p = TuningParams::new([16, 8, 8], fold)
                .sub_block(sub)
                .threads(2);
            sweep(&s, &[&u], &mut out, &p, TierPolicy::Auto);
            assert!(out.max_abs_diff(&r).unwrap() < 1e-12, "sub {sub:?}");
        }
    }

    #[test]
    fn block_size_never_changes_results() {
        let s = heat3d(1);
        let n = [17, 9, 7]; // awkward sizes exercise remainder blocks
        let fold = Fold::new(8, 1, 1);
        let u = filled("u", n, [1, 1, 1], fold);
        let r = reference(&s, &[&u], n);
        for block in [[1, 1, 1], [3, 3, 3], [17, 9, 7], [32, 32, 32], [5, 2, 6]] {
            let mut out = Grid3::new("o", n, [1, 1, 1], fold);
            let p = TuningParams::new(block, fold);
            sweep(&s, &[&u], &mut out, &p, TierPolicy::Auto);
            assert!(out.max_abs_diff(&r).unwrap() < 1e-12, "block {block:?}");
        }
    }

    #[test]
    fn profiled_run_is_bitwise_identical_and_records_phases() {
        let s = heat3d(1);
        let n = [24, 12, 10];
        let fold = Fold::new(8, 1, 1);
        let u = filled("u", n, [1, 1, 1], fold);
        let p = TuningParams::new([8, 4, 2], fold).threads(3);
        let mut plain = Grid3::new("a", n, [1, 1, 1], fold);
        let mut profiled = Grid3::new("b", n, [1, 1, 1], fold);
        let pool = ExecPool::new(3);
        SweepRequest::new(&p)
            .pool(&pool)
            .apply(&s, &[&u], &mut plain)
            .unwrap();
        let prof = SweepProfiler::enabled();
        let run = SweepRequest::new(&p)
            .pool(&pool)
            .profiler(&prof)
            .apply(&s, &[&u], &mut profiled)
            .unwrap();
        assert_eq!(plain.max_abs_diff(&profiled).unwrap(), 0.0);
        let r = prof.report();
        assert!(r.enabled);
        assert!(r.phases.iter().any(|ph| ph.name == "compile"));
        assert!(r.phases.iter().any(|ph| ph.name == "sweep"));
        let chunks = r.chunks.expect("threaded sweep records chunks");
        assert_eq!(chunks.count as usize, run.threads_used);
        let pool_win = r.pool.expect("pool window recorded");
        assert_eq!(pool_win.workers, 3);
        assert!(pool_win.occupancy > 0.0 && pool_win.occupancy <= 1.0);
    }

    #[test]
    fn profiled_brick_tier_records_chunks_and_stays_bitwise() {
        let s = box3d(1);
        let n = [12, 8, 8];
        let fold = Fold::new(4, 2, 1);
        let u = filled("u", n, [1, 1, 1], fold);
        let p = TuningParams::new([4, 4, 4], fold).threads(3);
        let mut plain = Grid3::new("a", n, [1, 1, 1], fold);
        let mut profiled = Grid3::new("b", n, [1, 1, 1], fold);
        SweepRequest::new(&p)
            .tier(TierPolicy::Auto)
            .apply(&s, &[&u], &mut plain)
            .unwrap();
        let prof = SweepProfiler::enabled();
        let run = SweepRequest::new(&p)
            .tier(TierPolicy::Auto)
            .profiler(&prof)
            .apply(&s, &[&u], &mut profiled)
            .unwrap();
        assert_eq!(run.tier, Tier::Folded);
        assert_eq!(plain.max_abs_diff(&profiled).unwrap(), 0.0);
        let r = prof.report();
        let chunks = r.chunks.expect("brick tier records per-slab chunks");
        assert_eq!(chunks.count as usize, run.threads_used);
    }

    #[test]
    fn dyn_arity_row_matches_specialised_rows_bitwise() {
        // box3d(2) has 125 terms — no monomorphised kernel — while
        // box3d(1) has 27 — specialised. Both must agree with the
        // reference; a radius-2 box against its own single-threaded run
        // checks the dyn row under threading too. The folded lane kernel
        // must agree bitwise with the scalar dyn row as well.
        let s = box3d(2);
        let n = [20, 9, 8];
        let fold = Fold::new(4, 1, 1);
        let u = filled("u", n, [2, 2, 2], fold);
        let p = TuningParams::new([10, 4, 2], fold);
        let mut one = Grid3::new("o1", n, [2, 2, 2], fold);
        sweep(&s, &[&u], &mut one, &p, TierPolicy::ForceScalar);
        let r = reference(&s, &[&u], n);
        assert!(one.max_abs_diff(&r).unwrap() < 1e-12);
        let mut four = Grid3::new("o4", n, [2, 2, 2], fold);
        sweep(
            &s,
            &[&u],
            &mut four,
            &p.clone().threads(4),
            TierPolicy::ForceScalar,
        );
        assert_eq!(one.max_abs_diff(&four).unwrap(), 0.0);
        let mut lanes = Grid3::new("ol", n, [2, 2, 2], fold);
        let rl = sweep(
            &s,
            &[&u],
            &mut lanes,
            &p.clone().threads(4),
            TierPolicy::ForceFolded,
        );
        assert_eq!(rl.tier, Tier::Folded);
        assert_eq!(one.max_abs_diff(&lanes).unwrap(), 0.0);
    }
}
