//! The folded brick kernel: explicit vectorised execution on
//! multi-dimensional vector folds (4×2×1, 2×2×2, …).
//!
//! A multi-dimensional fold stores each f_x×f_y×f_z brick contiguously,
//! so a row of the domain is scattered across bricks and the row kernels
//! in [`crate::native`] cannot run. Before this tier existed those
//! layouts fell back to the per-point generic path (one `idx()`
//! div/mod chain per access, single-threaded). The brick kernel instead
//! precomputes, once per sweep, a **gather table** per stencil term: the
//! signed element offset from an output brick's storage base to the
//! input element lane `e` of that brick reads. The inner loop is then a
//! wide-lane accumulator update over whole bricks — the vector-folding
//! execution model of YASK, within the crate's `deny(unsafe_code)`
//! discipline.
//!
//! The gather-table math: all grids share `alloc`/`halo`/`fold`
//! (eligibility is checked by the planner), so the brick decomposition
//! of output and inputs coincides. For lane `e` with within-brick
//! coordinates `w` and a term offset `o`, the accessed element lives in
//! the brick shifted by `s_d = (w_d + o_d) div f_d` at within-brick
//! coordinates `w'_d = (w_d + o_d) mod f_d` (Euclidean div/mod). Because
//! brick linearisation is affine and every access stays inside the
//! allocated box (halo ≥ radius), the target's storage index is
//! `base + shift_lin·E + within_lin(w')` where `base` is the output
//! brick's storage base — one signed delta per `(term, lane)`, valid for
//! every brick.
//!
//! Bitwise identity: each output point accumulates
//! `constant, +term₀, +term₁, …` in term order — the identical FP
//! operation sequence as the scalar row kernels and the generic path.
//!
//! Threading: brick storage is brick-z-major, so a range of brick-z
//! rows is a contiguous storage window. The domain's brick-z rows are
//! split into `params.threads` slabs with the same [`chunk_ranges`]
//! decomposition every other threaded path uses (bitwise reproducible
//! for any pool width). Spatial blocking parameters are ignored here:
//! bricks are visited in storage order, which is already the optimal
//! streaming traversal for this layout.

use yasksite_grid::Grid3;

use crate::params::{chunk_ranges, TuningParams};
use crate::pool::{ExecPool, ScopedJob};
use crate::profile::SweepProfiler;

/// Per-dimension range of within-brick lanes that are domain points (the
/// rest of the brick is halo/padding and must stay untouched).
#[inline]
fn lane_range(brick: usize, fold: usize, halo: usize, n: usize) -> (usize, usize) {
    let start = brick * fold;
    let lo = halo.saturating_sub(start).min(fold);
    let hi = (halo + n).saturating_sub(start).min(fold);
    (lo, hi)
}

/// Builds the gather table for one term offset `o`: the signed storage
/// delta from a brick's base to the element lane `e` reads.
fn gather_deltas<const E: usize>(o: [i32; 3], f: [usize; 3], folds: [usize; 3]) -> [isize; E] {
    let mut d = [0isize; E];
    for (e, de) in d.iter_mut().enumerate() {
        let w = [e % f[0], (e / f[0]) % f[1], e / (f[0] * f[1])];
        let mut shift = [0isize; 3];
        let mut within = [0usize; 3];
        for dim in 0..3 {
            let t = w[dim] as isize + o[dim] as isize;
            let fd = f[dim] as isize;
            shift[dim] = t.div_euclid(fd);
            within[dim] = t.rem_euclid(fd) as usize;
        }
        let shift_lin = (shift[2] * folds[1] as isize + shift[1]) * folds[0] as isize + shift[0];
        let within_lin = (within[2] * f[1] + within[1]) * f[0] + within[0];
        *de = shift_lin * E as isize + within_lin as isize;
    }
    d
}

/// Applies a linear stencil over the full domain of `out` through the
/// brick kernel, threading over brick-z slabs on `pool`. Returns the
/// number of slabs that received work (= threads used).
///
/// Preconditions (checked by the planner): `E == fold.elems()`, every
/// input shares `alloc`/`halo`/`fold` with `out`, halos cover the
/// stencil radius.
#[allow(clippy::too_many_arguments)] // internal executor; one call site
pub(crate) fn brick_fast_path<const E: usize>(
    pool: &ExecPool,
    terms: &[((usize, [i32; 3]), f64)],
    constant: f64,
    inputs: &[&Grid3],
    out: &mut Grid3,
    params: &TuningParams,
    prof: &SweepProfiler,
) -> usize {
    let n = out.n();
    let halo = out.halo();
    let alloc = out.alloc();
    let f = out.fold().to_array();
    debug_assert_eq!(E, f[0] * f[1] * f[2]);
    let folds = [alloc[0] / f[0], alloc[1] / f[1], alloc[2] / f[2]];

    // Gather tables, coefficients and source slices, once per sweep.
    let deltas: Vec<[isize; E]> = terms
        .iter()
        .map(|&((_, o), _)| gather_deltas::<E>(o, f, folds))
        .collect();
    let coeffs: Vec<f64> = terms.iter().map(|&(_, c)| c).collect();
    let srcs: Vec<&[f64]> = terms
        .iter()
        .map(|&((g, _), _)| inputs[g].as_slice())
        .collect();

    // Brick-z rows that contain domain points, split into contiguous
    // storage slabs. The decomposition depends only on
    // `(domain, params.threads)`, never on the pool width.
    let bz_lo = halo[2] / f[2];
    let bz_hi = (halo[2] + n[2] - 1) / f[2];
    let nbz = bz_hi - bz_lo + 1;
    let plane_elems = folds[0] * folds[1] * E;

    struct BrickSlab<'w> {
        win: &'w mut [f64],
        win_base: usize,
        bz0: usize,
        bz1: usize,
    }
    let mut slabs: Vec<BrickSlab<'_>> = Vec::new();
    let mut rest = out.as_mut_slice();
    let mut consumed = 0usize;
    for (c0, c1) in chunk_ranges(nbz, params.threads) {
        let (bz0, bz1) = (bz_lo + c0, bz_lo + c1);
        let first = bz0 * plane_elems;
        let last = bz1 * plane_elems;
        let (before, after) = rest.split_at_mut(last - consumed);
        rest = after;
        slabs.push(BrickSlab {
            win: &mut before[first - consumed..],
            win_base: first,
            bz0,
            bz1,
        });
        consumed = last;
    }
    let used = slabs.len();

    let deltas = &deltas;
    let coeffs = &coeffs;
    let srcs = &srcs;
    let jobs: Vec<ScopedJob<'_>> = slabs
        .into_iter()
        .map(|slab| {
            Box::new(move || {
                let t0 = prof.start();
                let win = slab.win;
                for bz in slab.bz0..slab.bz1 {
                    let (lz, hz) = lane_range(bz, f[2], halo[2], n[2]);
                    if lz >= hz {
                        continue;
                    }
                    let full_z = lz == 0 && hz == f[2];
                    for by in 0..folds[1] {
                        let (ly, hy) = lane_range(by, f[1], halo[1], n[1]);
                        if ly >= hy {
                            continue;
                        }
                        let full_y = full_z && ly == 0 && hy == f[1];
                        for bx in 0..folds[0] {
                            let (lx, hx) = lane_range(bx, f[0], halo[0], n[0]);
                            if lx >= hx {
                                continue;
                            }
                            let base = (((bz * folds[1] + by) * folds[0] + bx) * E) as isize;
                            let wb = base as usize - slab.win_base;
                            if full_y && lx == 0 && hx == f[0] {
                                // Interior brick: every lane is a domain
                                // point — full-width accumulators.
                                let mut acc = [constant; E];
                                for t in 0..coeffs.len() {
                                    let d = &deltas[t];
                                    let src = srcs[t];
                                    let c = coeffs[t];
                                    for (a, &dl) in acc.iter_mut().zip(d.iter()) {
                                        *a += c * src[(base + dl) as usize];
                                    }
                                }
                                win[wb..wb + E].copy_from_slice(&acc);
                            } else {
                                // Edge brick: touch only the domain
                                // lanes, same per-point op order.
                                for wz in lz..hz {
                                    for wy in ly..hy {
                                        for wx in lx..hx {
                                            let e = (wz * f[1] + wy) * f[0] + wx;
                                            let mut acc = constant;
                                            for t in 0..coeffs.len() {
                                                acc += coeffs[t]
                                                    * srcs[t][(base + deltas[t][e]) as usize];
                                            }
                                            win[wb + e] = acc;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                prof.chunk_done(t0);
            }) as ScopedJob<'_>
        })
        .collect();
    pool.run(jobs);
    used
}
