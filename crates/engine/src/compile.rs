//! Lowering of stencil expressions into fast evaluatable forms.

use yasksite_grid::Grid3;
use yasksite_stencil::{Expr, GridId, Stencil};

/// One access slot: input grid and offset.
pub type Access = (GridId, [i32; 3]);

/// A flattened, post-order representation of an expression; evaluated with
/// a small value stack over pre-fetched access values.
#[derive(Debug, Clone, PartialEq)]
pub struct Tape {
    ops: Vec<TapeOp>,
    accesses: Vec<Access>,
    max_stack: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum TapeOp {
    Const(f64),
    Load(u16),
    Add,
    Sub,
    Mul,
    Neg,
}

impl Tape {
    fn from_expr(expr: &Expr) -> Tape {
        let mut ops = Vec::new();
        let mut accesses: Vec<Access> = Vec::new();
        fn walk(e: &Expr, ops: &mut Vec<TapeOp>, accesses: &mut Vec<Access>) {
            match e {
                Expr::Const(v) => ops.push(TapeOp::Const(*v)),
                Expr::At { grid, dx, dy, dz } => {
                    let key = (*grid, [*dx, *dy, *dz]);
                    let slot = accesses.iter().position(|a| *a == key).unwrap_or_else(|| {
                        accesses.push(key);
                        accesses.len() - 1
                    });
                    ops.push(TapeOp::Load(
                        u16::try_from(slot).expect("tape slot overflow"),
                    ));
                }
                Expr::Add(a, b) => {
                    walk(a, ops, accesses);
                    walk(b, ops, accesses);
                    ops.push(TapeOp::Add);
                }
                Expr::Sub(a, b) => {
                    walk(a, ops, accesses);
                    walk(b, ops, accesses);
                    ops.push(TapeOp::Sub);
                }
                Expr::Mul(a, b) => {
                    walk(a, ops, accesses);
                    walk(b, ops, accesses);
                    ops.push(TapeOp::Mul);
                }
                Expr::Neg(a) => {
                    walk(a, ops, accesses);
                    ops.push(TapeOp::Neg);
                }
            }
        }
        walk(expr, &mut ops, &mut accesses);
        let mut depth = 0usize;
        let mut max_stack = 0usize;
        for op in &ops {
            match op {
                TapeOp::Const(_) | TapeOp::Load(_) => depth += 1,
                TapeOp::Add | TapeOp::Sub | TapeOp::Mul => depth -= 1,
                TapeOp::Neg => {}
            }
            max_stack = max_stack.max(depth);
        }
        Tape {
            ops,
            accesses,
            max_stack,
        }
    }

    /// The access slots the tape reads; the caller pre-fetches these into
    /// the `values` argument of [`Tape::eval`].
    #[must_use]
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Evaluates the tape over pre-fetched access values.
    ///
    /// # Panics
    /// Panics if `values.len() < accesses().len()`.
    #[must_use]
    #[inline]
    pub fn eval(&self, values: &[f64]) -> f64 {
        let mut stack = [0.0f64; 64];
        debug_assert!(self.max_stack <= stack.len());
        let mut sp = 0usize;
        for op in &self.ops {
            match *op {
                TapeOp::Const(v) => {
                    stack[sp] = v;
                    sp += 1;
                }
                TapeOp::Load(slot) => {
                    stack[sp] = values[slot as usize];
                    sp += 1;
                }
                TapeOp::Add => {
                    sp -= 1;
                    stack[sp - 1] += stack[sp];
                }
                TapeOp::Sub => {
                    sp -= 1;
                    stack[sp - 1] -= stack[sp];
                }
                TapeOp::Mul => {
                    sp -= 1;
                    stack[sp - 1] *= stack[sp];
                }
                TapeOp::Neg => stack[sp - 1] = -stack[sp - 1],
            }
        }
        debug_assert_eq!(sp, 1);
        stack[0]
    }
}

/// Linear form `Σ coeff_i · g_i(off_i) + constant`.
#[derive(Debug, Clone, PartialEq)]
struct LinForm {
    terms: Vec<(Access, f64)>,
    constant: f64,
}

impl LinForm {
    fn merge(mut self, other: LinForm, sign: f64) -> LinForm {
        for (a, c) in other.terms {
            match self.terms.iter_mut().find(|(k, _)| *k == a) {
                Some((_, existing)) => *existing += sign * c,
                None => self.terms.push((a, sign * c)),
            }
        }
        self.constant += sign * other.constant;
        self
    }

    fn scale(mut self, s: f64) -> LinForm {
        for (_, c) in &mut self.terms {
            *c *= s;
        }
        self.constant *= s;
        self
    }
}

fn linearize(e: &Expr) -> Option<LinForm> {
    match e {
        Expr::Const(v) => Some(LinForm {
            terms: vec![],
            constant: *v,
        }),
        Expr::At { grid, dx, dy, dz } => Some(LinForm {
            terms: vec![((*grid, [*dx, *dy, *dz]), 1.0)],
            constant: 0.0,
        }),
        Expr::Add(a, b) => Some(linearize(a)?.merge(linearize(b)?, 1.0)),
        Expr::Sub(a, b) => Some(linearize(a)?.merge(linearize(b)?, -1.0)),
        Expr::Mul(a, b) => {
            let la = linearize(a)?;
            let lb = linearize(b)?;
            if la.terms.is_empty() {
                Some(lb.scale(la.constant))
            } else if lb.terms.is_empty() {
                Some(la.scale(lb.constant))
            } else {
                None
            }
        }
        Expr::Neg(a) => Some(linearize(a)?.scale(-1.0)),
    }
}

/// A stencil lowered for fast evaluation: either an affine combination of
/// grid accesses (the common case, auto-vectorisable in the native fast
/// path) or a general post-order tape.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledStencil {
    /// `out = Σ coeff·access + constant`.
    Linear {
        /// Access/coefficient pairs.
        terms: Vec<(Access, f64)>,
        /// Additive constant.
        constant: f64,
    },
    /// General expression tape.
    Tape(Tape),
}

impl CompiledStencil {
    /// Lowers a stencil, preferring the linear form.
    #[must_use]
    pub fn compile(stencil: &Stencil) -> CompiledStencil {
        match linearize(stencil.expr()) {
            Some(l) => CompiledStencil::Linear {
                terms: l.terms,
                constant: l.constant,
            },
            None => CompiledStencil::Tape(Tape::from_expr(stencil.expr())),
        }
    }

    /// Whether the linear fast path applies.
    #[must_use]
    pub fn is_linear(&self) -> bool {
        matches!(self, CompiledStencil::Linear { .. })
    }

    /// The linear form's `(terms, constant)`, when the stencil lowered
    /// to one — what the native fast paths key their specialisation on.
    #[must_use]
    pub fn linear_terms(&self) -> Option<(&[(Access, f64)], f64)> {
        match self {
            CompiledStencil::Linear { terms, constant } => Some((terms, *constant)),
            CompiledStencil::Tape(_) => None,
        }
    }

    /// Evaluates at a point through the grid API (layout-agnostic slow
    /// path; the native executor specialises the linear case further).
    #[must_use]
    pub fn eval_at(&self, inputs: &[&Grid3], i: isize, j: isize, k: isize) -> f64 {
        match self {
            CompiledStencil::Linear { terms, constant } => {
                let mut acc = *constant;
                for ((g, o), c) in terms {
                    acc +=
                        c * inputs[*g].get(i + o[0] as isize, j + o[1] as isize, k + o[2] as isize);
                }
                acc
            }
            CompiledStencil::Tape(t) => {
                let mut vals = [0.0f64; 256];
                for (s, (g, o)) in t.accesses().iter().enumerate() {
                    vals[s] =
                        inputs[*g].get(i + o[0] as isize, j + o[1] as isize, k + o[2] as isize);
                }
                t.eval(&vals[..t.accesses().len()])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_grid::Fold;
    use yasksite_stencil::builders::{heat3d, inverter_chain_rhs};
    use yasksite_stencil::{at, c};

    #[test]
    fn heat3d_lowers_to_linear() {
        let cs = CompiledStencil::compile(&heat3d(1));
        match &cs {
            CompiledStencil::Linear { terms, constant } => {
                assert_eq!(terms.len(), 7);
                assert!((constant - 0.0).abs() < 1e-15);
                let center = terms.iter().find(|((_, o), _)| *o == [0, 0, 0]).unwrap();
                assert!((center.1 - 0.25).abs() < 1e-15); // 1 - 6*0.125
            }
            CompiledStencil::Tape(_) => panic!("expected linear"),
        }
    }

    #[test]
    fn nonlinear_falls_back_to_tape() {
        let cs = CompiledStencil::compile(&inverter_chain_rhs(5.0, 1.0, 2.0));
        assert!(!cs.is_linear());
    }

    #[test]
    fn duplicate_access_coefficients_merge() {
        let s = Stencil::new("m", 1, 1, at(0, 0, 0, 0) + c(2.0) * at(0, 0, 0, 0));
        match CompiledStencil::compile(&s) {
            CompiledStencil::Linear { terms, .. } => {
                assert_eq!(terms.len(), 1);
                assert!((terms[0].1 - 3.0).abs() < 1e-15);
            }
            CompiledStencil::Tape(_) => panic!("expected linear"),
        }
    }

    #[test]
    fn compiled_matches_reference_eval() {
        for s in [heat3d(1), inverter_chain_rhs(5.0, 1.2, 0.7)] {
            let cs = CompiledStencil::compile(&s);
            let mut u = Grid3::new("u", [8, 4, 4], [1, 1, 1], Fold::new(4, 2, 1));
            u.fill_with(|i, j, k| ((i * 13 + j * 5 + k * 3) % 17) as f64 * 0.25 + 0.1);
            u.fill_halo(0.5);
            for k in 0..4isize {
                for j in 0..4isize {
                    for i in 0..8isize {
                        let r = s.eval(&[&u], i, j, k);
                        let f = cs.eval_at(&[&u], i, j, k);
                        assert!(
                            (r - f).abs() < 1e-12,
                            "{} at ({i},{j},{k}): {r} vs {f}",
                            s.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tape_eval_const_expression() {
        let s = Stencil::new(
            "k",
            1,
            1,
            (c(2.0) + c(3.0)) * at(0, 0, 0, 0) * at(0, 0, 0, 0),
        );
        let cs = CompiledStencil::compile(&s);
        assert!(!cs.is_linear());
        let mut u = Grid3::new("u", [2, 1, 1], [0, 0, 0], Fold::unit());
        u.fill_all(2.0);
        assert!((cs.eval_at(&[&u], 0, 0, 0) - 20.0).abs() < 1e-14);
    }
}
