//! Multi-rank (MPI-style) decomposition — YASK's outermost loop level.
//!
//! YASK kernels run under MPI with the global domain cut into per-rank
//! sub-domains and halo planes exchanged every time step. The paper's
//! evaluation is single-socket, but the tool models the rank level so its
//! predictions extend to multi-node runs; this module reproduces that:
//! a z-slab decomposition ([`RankDecomposition`]), an interconnect cost
//! model ([`Interconnect`]) and a composed multi-rank prediction
//! ([`predict_multirank`]).

use crate::error::EngineError;

/// A 1-D (z) decomposition of the global domain over MPI ranks, the
/// layout YASK defaults to for a single stencil.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankDecomposition {
    /// Number of ranks.
    pub ranks: usize,
    /// Global domain extents.
    pub domain: [usize; 3],
    /// Halo exchange depth (stencil z-radius × wavefront depth).
    pub exchange_depth: usize,
}

impl RankDecomposition {
    /// Creates a decomposition.
    ///
    /// # Errors
    /// Fails if there are more ranks than z-planes, or zero ranks.
    pub fn new(
        domain: [usize; 3],
        ranks: usize,
        exchange_depth: usize,
    ) -> Result<Self, EngineError> {
        if ranks == 0 || ranks > domain[2] {
            return Err(EngineError::BadParams {
                reason: format!("{ranks} ranks cannot split {} z-planes", domain[2]),
            });
        }
        Ok(RankDecomposition {
            ranks,
            domain,
            exchange_depth,
        })
    }

    /// The z-plane range `[z0, z1)` owned by `rank`.
    ///
    /// # Panics
    /// Panics if `rank >= ranks`.
    #[must_use]
    pub fn slab(&self, rank: usize) -> (usize, usize) {
        assert!(rank < self.ranks, "rank out of range");
        let nz = self.domain[2];
        (rank * nz / self.ranks, (rank + 1) * nz / self.ranks)
    }

    /// Lattice points owned by `rank`.
    #[must_use]
    pub fn slab_points(&self, rank: usize) -> u64 {
        let (z0, z1) = self.slab(rank);
        ((z1 - z0) * self.domain[0] * self.domain[1]) as u64
    }

    /// Bytes one interior rank sends per time step per exchanged grid
    /// (both faces, `exchange_depth` planes each, `f64` elements).
    #[must_use]
    pub fn exchange_bytes_per_rank(&self) -> u64 {
        let plane = (self.domain[0] * self.domain[1] * 8) as u64;
        let faces = if self.ranks > 1 { 2 } else { 0 };
        faces * self.exchange_depth as u64 * plane
    }

    /// Largest per-rank point count (the load-balance bottleneck).
    #[must_use]
    pub fn max_slab_points(&self) -> u64 {
        (0..self.ranks)
            .map(|r| self.slab_points(r))
            .max()
            .unwrap_or(0)
    }

    /// Load-balance efficiency: mean slab size over max slab size.
    #[must_use]
    pub fn balance(&self) -> f64 {
        let total: u64 = (0..self.ranks).map(|r| self.slab_points(r)).sum();
        total as f64 / (self.ranks as f64 * self.max_slab_points() as f64)
    }
}

/// A simple latency/bandwidth interconnect model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interconnect {
    /// Per-message latency in seconds.
    pub latency_s: f64,
    /// Sustained point-to-point bandwidth in GB/s.
    pub bandwidth_gbs: f64,
}

impl Interconnect {
    /// HDR InfiniBand-class link (~2 µs, 25 GB/s).
    #[must_use]
    pub fn infiniband() -> Self {
        Interconnect {
            latency_s: 2e-6,
            bandwidth_gbs: 25.0,
        }
    }

    /// 100 GbE-class link (~10 µs, 12 GB/s).
    #[must_use]
    pub fn ethernet100g() -> Self {
        Interconnect {
            latency_s: 10e-6,
            bandwidth_gbs: 12.0,
        }
    }

    /// Transfer time of one `bytes`-sized message.
    #[must_use]
    pub fn time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / (self.bandwidth_gbs * 1e9)
    }
}

/// Composed multi-rank prediction for one time step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiRankPrediction {
    /// Per-step compute seconds of the bottleneck rank.
    pub compute_s: f64,
    /// Per-step halo-exchange seconds (2 messages of depth planes).
    pub comm_s: f64,
    /// Total step seconds (no compute/comm overlap, YASK's default
    /// exchange mode).
    pub step_s: f64,
    /// Parallel efficiency vs. a perfectly scaled single-rank run.
    pub efficiency: f64,
}

/// Predicts the per-step time of `decomp.ranks` ranks, given the
/// single-rank full-domain step time `single_rank_step_s` (from the ECM
/// layer or a measurement), the number of grids whose halos must be
/// exchanged, and the interconnect.
///
/// Compute time scales with the bottleneck slab; each step then pays two
/// neighbour messages per exchanged grid.
#[must_use]
pub fn predict_multirank(
    single_rank_step_s: f64,
    decomp: &RankDecomposition,
    exchanged_grids: usize,
    net: &Interconnect,
) -> MultiRankPrediction {
    let total_points = (decomp.domain[0] * decomp.domain[1] * decomp.domain[2]) as f64;
    let compute_s = single_rank_step_s * decomp.max_slab_points() as f64 / total_points;
    let msg = decomp.exchange_bytes_per_rank() / 2; // per face
    let comm_s = if decomp.ranks > 1 {
        2.0 * exchanged_grids as f64 * net.time(msg)
    } else {
        0.0
    };
    let step_s = compute_s + comm_s;
    let ideal = single_rank_step_s / decomp.ranks as f64;
    MultiRankPrediction {
        compute_s,
        comm_s,
        step_s,
        efficiency: (ideal / step_s).min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slabs_partition_the_domain() {
        let d = RankDecomposition::new([64, 64, 100], 7, 1).unwrap();
        let mut covered = 0;
        for r in 0..7 {
            let (z0, z1) = d.slab(r);
            assert!(z1 > z0);
            covered += z1 - z0;
            if r > 0 {
                assert_eq!(d.slab(r - 1).1, z0, "slabs must be contiguous");
            }
        }
        assert_eq!(covered, 100);
        assert!(d.balance() > 0.9);
    }

    #[test]
    fn too_many_ranks_rejected() {
        assert!(RankDecomposition::new([8, 8, 4], 5, 1).is_err());
        assert!(RankDecomposition::new([8, 8, 4], 0, 1).is_err());
    }

    #[test]
    fn exchange_bytes_formula() {
        let d = RankDecomposition::new([128, 64, 64], 4, 2).unwrap();
        // 2 faces x 2 planes x 128*64 points x 8 B.
        assert_eq!(d.exchange_bytes_per_rank(), 2 * 2 * 128 * 64 * 8);
        let single = RankDecomposition::new([128, 64, 64], 1, 2).unwrap();
        assert_eq!(single.exchange_bytes_per_rank(), 0);
    }

    #[test]
    fn strong_scaling_efficiency_decays() {
        let net = Interconnect::infiniband();
        let single = 0.05; // 50 ms step on one rank
        let mut last_eff = 1.1;
        for ranks in [1usize, 2, 4, 8, 16] {
            let d = RankDecomposition::new([512, 512, 512], ranks, 1).unwrap();
            let p = predict_multirank(single, &d, 1, &net);
            assert!(p.efficiency <= last_eff + 1e-12, "ranks={ranks}");
            assert!(p.step_s > 0.0);
            last_eff = p.efficiency;
        }
        // At 16 ranks of a bandwidth-light exchange, efficiency is still
        // decent on InfiniBand-class links.
        assert!(last_eff > 0.5, "efficiency collapsed: {last_eff}");
    }

    #[test]
    fn slow_network_hurts_more() {
        let d = RankDecomposition::new([256, 256, 256], 8, 1).unwrap();
        let fast = predict_multirank(0.01, &d, 2, &Interconnect::infiniband());
        let slow = predict_multirank(0.01, &d, 2, &Interconnect::ethernet100g());
        assert!(slow.comm_s > fast.comm_s);
        assert!(slow.efficiency < fast.efficiency);
    }

    #[test]
    fn latency_dominates_tiny_planes() {
        let net = Interconnect::infiniband();
        let tiny = RankDecomposition::new([8, 8, 64], 8, 1).unwrap();
        let t = net.time(tiny.exchange_bytes_per_rank() / 2);
        assert!(t < 2.0 * net.latency_s, "tiny halos are latency-bound");
    }
}
