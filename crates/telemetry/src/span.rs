//! Span collection and the human-readable span-tree report.
//!
//! Spans themselves are opened and closed through
//! [`crate::Telemetry::span`] / [`crate::SpanGuard`]; this module holds
//! the thread-safe collector the guards record into and the aggregation
//! that turns thousands of raw [`SpanRecord`]s into a compact tree
//! (count and total duration per unique path), similar to a collapsed
//! flame graph.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One closed span: identity, parentage and timing relative to the
/// owning [`crate::Telemetry`] epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the telemetry session (ids start at 1).
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root span.
    pub parent: u64,
    /// Static span name (`"tune_session"`, `"rank"`, `"trial"`, ...).
    pub name: &'static str,
    /// Open time in microseconds since the telemetry epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// Thread-safe store of closed spans plus open/close balance counters.
#[derive(Debug, Default)]
pub(crate) struct SpanCollector {
    next_id: AtomicU64,
    opened: AtomicU64,
    closed: AtomicU64,
    records: Mutex<Vec<SpanRecord>>,
}

impl SpanCollector {
    /// Allocates the next span id (1-based) and counts the open.
    pub(crate) fn open(&self) -> u64 {
        self.opened.fetch_add(1, Ordering::Relaxed);
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Records a closed span.
    pub(crate) fn close(&self, record: SpanRecord) {
        self.closed.fetch_add(1, Ordering::Relaxed);
        self.records.lock().expect("spans poisoned").push(record);
    }

    pub(crate) fn opened(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }

    pub(crate) fn closed(&self) -> u64 {
        self.closed.load(Ordering::Relaxed)
    }

    pub(crate) fn records(&self) -> Vec<SpanRecord> {
        self.records.lock().expect("spans poisoned").clone()
    }
}

/// Aggregated statistics of one unique span path.
struct PathStats {
    depth: usize,
    name: &'static str,
    count: u64,
    total_us: u64,
    first_start: u64,
}

/// Renders closed spans as an aggregated tree: one line per unique
/// ancestry path with call count and total duration, children indented
/// under parents, siblings ordered by first occurrence.
#[must_use]
pub fn render_span_tree(records: &[SpanRecord]) -> String {
    if records.is_empty() {
        return "span tree: (no spans recorded)\n".to_string();
    }
    let by_id: HashMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    // Path of a span = names of its ancestors plus its own, joined.
    let path_of = |r: &SpanRecord| -> String {
        let mut names = vec![r.name];
        let mut cur = r.parent;
        while cur != 0 {
            match by_id.get(&cur) {
                Some(p) => {
                    names.push(p.name);
                    cur = p.parent;
                }
                // Parent closed later than the snapshot (or never): treat
                // this span as a root of its own path.
                None => break,
            }
        }
        names.reverse();
        names.join("\u{1f}")
    };
    let mut stats: Vec<(String, PathStats)> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut sorted: Vec<&SpanRecord> = records.iter().collect();
    sorted.sort_by_key(|r| (r.start_us, r.id));
    for r in sorted {
        let path = path_of(r);
        let depth = path.matches('\u{1f}').count();
        match index.get(&path) {
            Some(&i) => {
                let s = &mut stats[i].1;
                s.count += 1;
                s.total_us += r.dur_us;
            }
            None => {
                index.insert(path.clone(), stats.len());
                stats.push((
                    path,
                    PathStats {
                        depth,
                        name: r.name,
                        count: 1,
                        total_us: r.dur_us,
                        first_start: r.start_us,
                    },
                ));
            }
        }
    }
    // Depth-first order: sort by path string with parents prefixing
    // children, tie-broken by first occurrence so sibling order is the
    // order the program entered them.
    stats.sort_by(|a, b| {
        let (pa, pb) = (&a.0, &b.0);
        if pb.starts_with(pa.as_str()) && pb.len() > pa.len() {
            return std::cmp::Ordering::Less;
        }
        if pa.starts_with(pb.as_str()) && pa.len() > pb.len() {
            return std::cmp::Ordering::Greater;
        }
        a.1.first_start
            .cmp(&b.1.first_start)
            .then_with(|| pa.cmp(pb))
    });
    let total_us: u64 = stats
        .iter()
        .filter(|(_, s)| s.depth == 0)
        .map(|(_, s)| s.total_us)
        .sum();
    let mut out = String::new();
    let _ = writeln!(out, "span tree (root total {}):", fmt_us(total_us));
    for (_, s) in &stats {
        let _ = writeln!(
            out,
            "  {:indent$}{:<width$} {:>6}  {:>12}",
            "",
            s.name,
            s.count,
            fmt_us(s.total_us),
            indent = s.depth * 2,
            width = 24usize.saturating_sub(s.depth * 2).max(1),
        );
    }
    out
}

/// Formats microseconds with a readable unit.
fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.3}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.3}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: u64, name: &'static str, start_us: u64, dur_us: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            start_us,
            dur_us,
        }
    }

    #[test]
    fn collector_balances_ids_and_counts() {
        let c = SpanCollector::default();
        let a = c.open();
        let b = c.open();
        assert_eq!((a, b), (1, 2));
        assert_eq!(c.opened(), 2);
        assert_eq!(c.closed(), 0);
        c.close(rec(b, a, "inner", 5, 10));
        c.close(rec(a, 0, "outer", 0, 20));
        assert_eq!(c.closed(), 2);
        assert_eq!(c.records().len(), 2);
    }

    #[test]
    fn tree_aggregates_repeated_paths() {
        let records = vec![
            rec(1, 0, "tune_session", 0, 100),
            rec(2, 1, "rank", 1, 30),
            rec(3, 1, "trial", 40, 20),
            rec(4, 3, "predict", 41, 2),
            rec(5, 1, "trial", 65, 25),
            rec(6, 5, "predict", 66, 3),
        ];
        let tree = render_span_tree(&records);
        assert!(tree.contains("tune_session"), "{tree}");
        // Two trials aggregate into one line with count 2, total 45us.
        let trial_line = tree
            .lines()
            .find(|l| l.trim_start().starts_with("trial"))
            .unwrap();
        assert!(trial_line.contains('2'), "{trial_line}");
        assert!(trial_line.contains("45us"), "{trial_line}");
        let predict_line = tree
            .lines()
            .find(|l| l.trim_start().starts_with("predict"))
            .unwrap();
        assert!(predict_line.contains("5us"), "{predict_line}");
        // predict is indented deeper than trial.
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(indent(predict_line) > indent(trial_line));
    }

    #[test]
    fn empty_and_orphan_records_render() {
        assert!(render_span_tree(&[]).contains("no spans"));
        // Orphan: parent id never closed — treated as a root.
        let tree = render_span_tree(&[rec(7, 99, "lost", 0, 5)]);
        assert!(tree.contains("lost"));
    }
}
