//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms behind interior mutability, so any thread holding a
//! [`crate::Telemetry`] clone can record without coordination.
//!
//! Names are free-form dotted strings (`"tune.cache_hits"`,
//! `"trial.sample_seconds"`). Storage is `BTreeMap`-backed so snapshots
//! and rendered reports list metrics in a deterministic order.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Default histogram bucket upper bounds for durations in seconds: one
/// decade per bucket from 1 µs to 100 s, plus an implicit overflow
/// bucket.
pub const DEFAULT_SECONDS_BOUNDS: [f64; 9] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0];

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper edge of
/// bucket `i`, and one extra overflow bucket catches everything above the
/// last bound.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram over `bounds` (must be sorted ascending; callers
    /// pass literals, so this is asserted in debug builds only).
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation. Non-finite values are counted in the
    /// overflow bucket but excluded from `sum`/`min`/`max`.
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        if v.is_finite() {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all finite observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest finite observation, if any.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.min.is_finite()).then_some(self.min)
    }

    /// Largest finite observation, if any.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.max.is_finite()).then_some(self.max)
    }

    /// The bucket upper bounds this histogram was built with.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Compact one-line rendering of the non-empty buckets, e.g.
    /// `le=0.001:4 le=0.01:1 inf:0`.
    #[must_use]
    pub fn render_buckets(&self) -> String {
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            if i < self.bounds.len() {
                let _ = write!(out, "le={}:{c}", self.bounds[i]);
            } else {
                let _ = write!(out, "inf:{c}");
            }
        }
        if out.is_empty() {
            out.push_str("(empty)");
        }
        out
    }
}

/// Thread-safe registry of named counters, gauges and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to counter `name`, creating it at zero first if needed.
    pub fn add(&self, name: &str, n: u64) {
        let mut c = self.counters.lock().expect("metrics poisoned");
        *c.entry(name.to_string()).or_insert(0) += n;
    }

    /// Current value of counter `name` (0 if never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .expect("metrics poisoned")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Sets gauge `name` to `v` (last write wins).
    pub fn set_gauge(&self, name: &str, v: f64) {
        let mut g = self.gauges.lock().expect("metrics poisoned");
        g.insert(name.to_string(), v);
    }

    /// Current value of gauge `name`, if ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .lock()
            .expect("metrics poisoned")
            .get(name)
            .copied()
    }

    /// Records `v` into histogram `name`, creating it with the default
    /// seconds buckets ([`DEFAULT_SECONDS_BOUNDS`]) if needed.
    pub fn observe(&self, name: &str, v: f64) {
        self.observe_with(name, &DEFAULT_SECONDS_BOUNDS, v);
    }

    /// Records `v` into histogram `name`, creating it over `bounds` if
    /// needed (an existing histogram keeps its original bounds).
    pub fn observe_with(&self, name: &str, bounds: &[f64], v: f64) {
        let mut h = self.histograms.lock().expect("metrics poisoned");
        h.entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    /// A point-in-time copy of every metric, in name order.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("metrics poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("metrics poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("metrics poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

/// A frozen, name-ordered copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values, in name order.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, in name order.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, in name order.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// Whether no metric was ever recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Human-readable multi-line report (deterministic order).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("metrics:\n");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "  counter   {name:<32} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "  gauge     {name:<32} {v:.6}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "  histogram {name:<32} count={} sum={:.6} min={:.6} max={:.6} [{}]",
                h.count(),
                h.sum(),
                h.min().unwrap_or(0.0),
                h.max().unwrap_or(0.0),
                h.render_buckets()
            );
        }
        if self.is_empty() {
            out.push_str("  (none)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_values_on_inclusive_upper_edges() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 1.5, 10.0, 99.0, 100.5, 1e9] {
            h.observe(v);
        }
        // <=1: {0.5, 1.0}; <=10: {1.5, 10.0}; <=100: {99.0}; overflow: 2.
        assert_eq!(h.bucket_counts(), &[2, 2, 1, 2]);
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(1e9));
    }

    #[test]
    fn histogram_handles_non_finite_and_empty() {
        let mut h = Histogram::new(&[1.0]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.render_buckets(), "(empty)");
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.bucket_counts(), &[0, 2], "non-finite lands in overflow");
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn registry_counters_and_gauges() {
        let m = MetricsRegistry::new();
        m.add("a.hits", 2);
        m.add("a.hits", 3);
        m.set_gauge("imbalance", 0.25);
        m.set_gauge("imbalance", 0.5);
        assert_eq!(m.counter("a.hits"), 5);
        assert_eq!(m.counter("never"), 0);
        assert_eq!(m.gauge("imbalance"), Some(0.5));
        assert_eq!(m.gauge("never"), None);
    }

    #[test]
    fn snapshot_is_ordered_and_renders() {
        let m = MetricsRegistry::new();
        m.add("z.last", 1);
        m.add("a.first", 1);
        m.observe("lat", 0.5e-3);
        let s = m.snapshot();
        assert_eq!(s.counters[0].0, "a.first");
        assert_eq!(s.counters[1].0, "z.last");
        let text = s.render();
        assert!(text.contains("counter   a.first"));
        assert!(text.contains("histogram lat"));
        assert!(text.contains("le=0.001:1"));
    }

    #[test]
    fn default_bounds_cover_microseconds_to_minutes() {
        let m = MetricsRegistry::new();
        m.observe("t", 3e-6);
        m.observe("t", 0.02);
        m.observe("t", 250.0);
        let s = m.snapshot();
        let (_, h) = &s.histograms[0];
        assert_eq!(h.count(), 3);
        assert_eq!(*h.bucket_counts().last().unwrap(), 1, "250s overflows");
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let m = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        m.add("n", 1);
                    }
                });
            }
        });
        assert_eq!(m.counter("n"), 4000);
    }
}
