//! Minimal JSON support: an escape/append writer used by the event sinks
//! and a strict recursive-descent parser used by the trace checker and
//! the test suite.
//!
//! The workspace's vendored `serde` stand-in carries no (de)serialization
//! machinery (see `vendor/README.md`), so the telemetry crate encodes and
//! decodes its JSONL event stream by hand. The dialect is deliberately
//! small but standard: objects, arrays, strings with the usual escapes
//! (including `\uXXXX` with surrogate pairs), numbers with optional
//! fraction/exponent, `true`/`false`/`null`.

use std::fmt::Write as _;

/// A parsed JSON value. Object members keep their source order so tests
/// can assert on deterministic rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; the event schema only emits values
    /// that round-trip exactly at `f64` precision).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source member order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object, if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out` as a JSON number. Non-finite values (which valid
/// JSON cannot represent) are emitted as `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Parses a complete JSON document from `text`.
///
/// # Errors
/// Returns a human-readable message (with a byte offset) on any syntax
/// error or trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slices
                    // at char boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "invalid \\u escape")?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape")?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid number")?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_round_trip() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, r#""a\"b\\c\nd\te\u0001""#);
        let parsed = parse(&out).unwrap();
        assert_eq!(parsed, Json::Str("a\"b\\c\nd\te\u{1}".into()));
    }

    #[test]
    fn parses_an_event_line() {
        let line = r#"{"v":1,"ev":"span_open","t_us":12,"id":3,"parent":0,"name":"tune_session"}"#;
        let j = parse(line).unwrap();
        assert_eq!(j.get("v").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("ev").and_then(Json::as_str), Some("span_open"));
        assert_eq!(j.get("name").and_then(Json::as_str), Some("tune_session"));
        assert_eq!(j.get("parent").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn parses_nested_structures_and_numbers() {
        let j = parse(r#"{"a":[1,-2.5,1e-3,true,null],"b":{"c":"é"}}"#).unwrap();
        let arr = match j.get("a") {
            Some(Json::Arr(v)) => v,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1], Json::Num(-2.5));
        assert_eq!(arr[2], Json::Num(1e-3));
        assert_eq!(arr[3], Json::Bool(true));
        assert_eq!(arr[4], Json::Null);
        assert_eq!(
            j.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("é")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        out.clear();
        write_f64(&mut out, 0.001);
        assert_eq!(out, "0.001");
    }
}
