//! Event sinks: where encoded JSONL event lines go.
//!
//! The [`crate::Telemetry`] handle encodes each event to a single JSON
//! line and hands it to its sink. Three implementations cover the
//! pipeline's needs: [`NullSink`] (spans and metrics are still collected
//! in memory, but no line is ever encoded or stored — the near-zero
//! overhead mode), [`MemorySink`] (test harness), and [`WriterSink`]
//! (streams to any `io::Write`, typically the `--trace-out` file).

use std::collections::VecDeque;
use std::io::Write;
use std::sync::Mutex;

/// Destination for encoded JSONL event lines. Implementations must be
/// callable from any thread.
pub trait EventSink: Send + Sync {
    /// Consumes one encoded event line (no trailing newline).
    fn emit(&self, line: &str);

    /// Flushes any buffered lines to their final destination.
    fn flush(&self) {}

    /// Whether this sink wants event lines at all. When `false`, the
    /// telemetry layer skips JSON encoding entirely; spans and metrics
    /// are still collected.
    fn wants_events(&self) -> bool {
        true
    }
}

/// Discards every event without encoding it.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _line: &str) {}

    fn wants_events(&self) -> bool {
        false
    }
}

/// Collects event lines in memory — the test harness's sink, and (in
/// its bounded form) the in-process ring buffer a long-lived daemon can
/// attach without growing without limit.
#[derive(Debug, Default)]
pub struct MemorySink {
    inner: Mutex<MemoryBuf>,
    /// `None` = unbounded (the test default); `Some(cap)` = keep only
    /// the newest `cap` lines, evicting the oldest.
    capacity: Option<usize>,
}

#[derive(Debug, Default)]
struct MemoryBuf {
    lines: VecDeque<String>,
    dropped: u64,
}

impl MemorySink {
    /// An empty, effectively unbounded sink (tests and short sessions).
    #[must_use]
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// An empty sink retaining at most `capacity` lines: once full, each
    /// new line evicts the oldest and bumps the [`MemorySink::dropped`]
    /// counter. A capacity of zero drops everything.
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        MemorySink {
            inner: Mutex::new(MemoryBuf::default()),
            capacity: Some(capacity),
        }
    }

    /// A copy of every retained line, oldest first.
    #[must_use]
    pub fn lines(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("sink poisoned")
            .lines
            .iter()
            .cloned()
            .collect()
    }

    /// Number of lines currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("sink poisoned").lines.len()
    }

    /// Whether nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lines evicted (or refused) because the ring was full. Always zero
    /// on an unbounded sink.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("sink poisoned").dropped
    }

    /// The configured ring capacity (`None` = unbounded).
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }
}

impl EventSink for MemorySink {
    fn emit(&self, line: &str) {
        let mut buf = self.inner.lock().expect("sink poisoned");
        match self.capacity {
            Some(0) => {
                buf.dropped += 1;
                return;
            }
            Some(cap) => {
                while buf.lines.len() >= cap {
                    buf.lines.pop_front();
                    buf.dropped += 1;
                }
            }
            None => {}
        }
        buf.lines.push_back(line.to_string());
    }
}

/// Streams each event line (newline-terminated) to a wrapped writer —
/// the JSONL file sink behind `--trace-out`.
pub struct WriterSink {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl WriterSink {
    /// Sink writing to `writer`. Callers wanting buffered file output
    /// should pass a `BufWriter` (see [`crate::Telemetry::to_file`]).
    #[must_use]
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        WriterSink {
            writer: Mutex::new(writer),
        }
    }
}

impl std::fmt::Debug for WriterSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("WriterSink")
    }
}

impl EventSink for WriterSink {
    fn emit(&self, line: &str) {
        let mut w = self.writer.lock().expect("sink poisoned");
        // Telemetry must never take the process down: I/O errors on the
        // trace stream are swallowed (the tuning result is the product,
        // the trace is a diagnostic).
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("sink poisoned").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_declines_events() {
        let s = NullSink;
        assert!(!s.wants_events());
        s.emit("ignored");
        s.flush();
    }

    #[test]
    fn memory_sink_keeps_order() {
        let s = MemorySink::new();
        assert!(s.is_empty());
        s.emit("a");
        s.emit("b");
        assert_eq!(s.lines(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.capacity(), None);
    }

    #[test]
    fn bounded_memory_sink_evicts_oldest_and_counts_drops() {
        let s = MemorySink::bounded(2);
        s.emit("a");
        s.emit("b");
        assert_eq!(s.dropped(), 0);
        s.emit("c");
        s.emit("d");
        assert_eq!(s.lines(), vec!["c".to_string(), "d".to_string()]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.capacity(), Some(2));
    }

    #[test]
    fn zero_capacity_sink_drops_everything() {
        let s = MemorySink::bounded(0);
        s.emit("a");
        s.emit("b");
        assert!(s.is_empty());
        assert_eq!(s.dropped(), 2);
    }

    #[test]
    fn writer_sink_terminates_lines() {
        let buf: Vec<u8> = Vec::new();
        let shared = std::sync::Arc::new(Mutex::new(buf));
        struct Probe(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for Probe {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = WriterSink::new(Box::new(Probe(shared.clone())));
        sink.emit("{\"v\":1}");
        sink.flush();
        assert_eq!(
            String::from_utf8(shared.lock().unwrap().clone()).unwrap(),
            "{\"v\":1}\n"
        );
    }
}
