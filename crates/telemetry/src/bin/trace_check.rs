//! `trace_check [--format chrome|prom|summary] FILE.jsonl [...]` —
//! validates JSONL traces emitted by the telemetry layer: every line
//! must parse as a JSON object with the required envelope keys (`v`,
//! `ev`, `t_us`) at the supported schema version, span open/close
//! events must balance, and structured event kinds (`metric`,
//! `metric_bucket`, `profile`, `profile_pool`, `drift`,
//! `drift_summary`) must carry their required fields.
//!
//! Without `--format`, prints one OK line per valid file. With
//! `--format`, additionally exports each valid file to stdout:
//! `chrome` emits a chrome://tracing JSON document of the span tree,
//! `prom` the Prometheus text exposition of the recorded metrics, and
//! `summary` a human-readable digest with histogram percentiles.
//! Exits nonzero on the first invalid file; CI runs this against the
//! `--trace-out` output of a real tuning session.

use std::process::ExitCode;

use yasksite_telemetry::{
    check_trace, chrome_trace_from_trace, prometheus_from_trace, summary_from_trace,
};

const USAGE: &str =
    "usage: trace_check [--format chrome|prom|summary] FILE.jsonl [FILE2.jsonl ...]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--format" {
            match it.next() {
                Some(f) if matches!(f.as_str(), "chrome" | "prom" | "summary") => {
                    format = Some(f);
                }
                Some(f) => {
                    eprintln!("trace_check: unknown format '{f}' (chrome|prom|summary)");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("trace_check: --format needs a value (chrome|prom|summary)");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            files.push(arg);
        }
    }
    if files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("trace_check: {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match check_trace(&text) {
            Ok(stats) => match format.as_deref() {
                None => println!(
                    "{file}: OK — {} events, {} spans opened, {} closed",
                    stats.events, stats.spans_opened, stats.spans_closed
                ),
                Some(fmt) => {
                    let exported = match fmt {
                        "chrome" => chrome_trace_from_trace(&text),
                        "prom" => prometheus_from_trace(&text),
                        _ => summary_from_trace(&text),
                    };
                    match exported {
                        Ok(out) => print!("{out}"),
                        Err(e) => {
                            eprintln!("trace_check: {file}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            },
            Err(e) => {
                eprintln!("trace_check: {file}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
