//! `trace_check FILE.jsonl [FILE2.jsonl ...]` — validates JSONL traces
//! emitted by the telemetry layer: every line must parse as a JSON
//! object with the required envelope keys (`v`, `ev`, `t_us`) at the
//! supported schema version, and span open/close events must balance.
//! Exits nonzero on the first invalid file; CI runs this against the
//! `--trace-out` output of a real tuning session.

use std::process::ExitCode;

use yasksite_telemetry::check_trace;

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: trace_check FILE.jsonl [FILE2.jsonl ...]");
        return ExitCode::FAILURE;
    }
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("trace_check: {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match check_trace(&text) {
            Ok(stats) => println!(
                "{file}: OK — {} events, {} spans opened, {} closed",
                stats.events, stats.spans_opened, stats.spans_closed
            ),
            Err(e) => {
                eprintln!("trace_check: {file}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
