//! Exporters: turn recorded telemetry — span records, metrics snapshots
//! or a raw JSONL trace — into external formats.
//!
//! Three formats are supported, each consumable by standard tooling:
//!
//! * **chrome://tracing** ([`chrome_trace_from_spans`],
//!   [`chrome_trace_from_trace`]): the span tree as balanced `B`/`E`
//!   duration events inside a `{"traceEvents": [...]}` document.
//!   Overlapping spans (parallel workers) are spread across `tid` lanes
//!   so every lane keeps strict stack discipline and the global `ts`
//!   sequence stays monotonic.
//! * **Prometheus text exposition** ([`prometheus_text`],
//!   [`prometheus_from_trace`]): counters, gauges and histograms
//!   (cumulative `_bucket{le="..."}` series plus `_sum`/`_count`), with
//!   dotted metric names sanitised to the Prometheus charset. The
//!   trace-driven variant reconstructs the registry from the `metric`
//!   and `metric_bucket` summary events [`crate::Telemetry::finish`]
//!   appends, and renders byte-identically to the live snapshot.
//! * **Percentile summaries** ([`histogram_percentiles`],
//!   [`summary_from_trace`]): p50/p95/p99 estimates interpolated inside
//!   the fixed histogram buckets, clamped to the observed min/max.

use std::fmt::Write as _;

use crate::json::{self, write_escaped, Json};
use crate::metrics::{Histogram, MetricsSnapshot};
use crate::span::SpanRecord;
use crate::SCHEMA_VERSION;

/// Interpolated percentiles of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PercentileSummary {
    /// Total observations.
    pub count: u64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

/// Percentile estimates for `h`, or `None` when it is empty. Values are
/// linearly interpolated within the bucket containing the quantile and
/// clamped to the observed `[min, max]` range.
#[must_use]
pub fn histogram_percentiles(h: &Histogram) -> Option<PercentileSummary> {
    percentiles_from_buckets(h.bounds(), h.bucket_counts(), h.min(), h.max())
}

/// [`histogram_percentiles`] over raw bucket data (used when the
/// histogram is reconstructed from a trace rather than held live).
#[must_use]
pub fn percentiles_from_buckets(
    bounds: &[f64],
    counts: &[u64],
    min: Option<f64>,
    max: Option<f64>,
) -> Option<PercentileSummary> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let q = |q: f64| quantile(bounds, counts, min, max, total, q);
    Some(PercentileSummary {
        count: total,
        p50: q(0.50),
        p95: q(0.95),
        p99: q(0.99),
    })
}

fn quantile(
    bounds: &[f64],
    counts: &[u64],
    min: Option<f64>,
    max: Option<f64>,
    total: u64,
    q: f64,
) -> f64 {
    let target = q * total as f64;
    let mut cum = 0.0;
    for (i, &c) in counts.iter().enumerate() {
        let next = cum + c as f64;
        if c > 0 && next >= target {
            let lower = if i == 0 {
                min.unwrap_or(0.0)
                    .min(bounds.first().copied().unwrap_or(0.0))
            } else {
                bounds[i - 1]
            };
            let upper = if i < bounds.len() {
                bounds[i]
            } else {
                max.unwrap_or(lower)
            };
            let frac = ((target - cum) / c as f64).clamp(0.0, 1.0);
            let v = lower + (upper - lower) * frac;
            return match (min, max) {
                (Some(lo), Some(hi)) => v.clamp(lo, hi),
                _ => v,
            };
        }
        cum = next;
    }
    max.unwrap_or(0.0)
}

// ---------------------------------------------------------------------------
// chrome://tracing
// ---------------------------------------------------------------------------

/// A span as the chrome exporter sees it: name, absolute start and
/// duration (microseconds since the session epoch).
#[derive(Debug, Clone)]
struct RawSpan {
    name: String,
    start_us: u64,
    end_us: u64,
}

/// Renders closed spans as a chrome://tracing JSON document (open it via
/// `chrome://tracing` or <https://ui.perfetto.dev>). Every span becomes a
/// balanced `B`/`E` pair; spans that overlap in time without nesting are
/// assigned to separate `tid` lanes so each lane is a well-formed stack.
#[must_use]
pub fn chrome_trace_from_spans(records: &[SpanRecord]) -> String {
    let raw: Vec<RawSpan> = records
        .iter()
        .map(|r| RawSpan {
            name: r.name.to_string(),
            start_us: r.start_us,
            end_us: r.start_us.saturating_add(r.dur_us),
        })
        .collect();
    chrome_trace(raw)
}

/// [`chrome_trace_from_spans`] for a raw JSONL trace: pairs `span_open`
/// and `span_close` events by id and exports the resulting spans.
///
/// # Errors
/// Returns a message on unparseable lines, schema mismatches or closes
/// without a matching open.
pub fn chrome_trace_from_trace(text: &str) -> Result<String, String> {
    let mut open: Vec<(u64, String, u64)> = Vec::new(); // (id, name, start_us)
    let mut raw = Vec::new();
    for (lineno, line) in trace_lines(text) {
        let j = parse_trace_line(line, lineno)?;
        match j.get("ev").and_then(Json::as_str) {
            Some("span_open") => {
                let id = require_u64(&j, "id", "span_open", lineno)?;
                let name = require_str(&j, "name", "span_open", lineno)?.to_string();
                let t = require_u64(&j, "t_us", "span_open", lineno)?;
                open.push((id, name, t));
            }
            Some("span_close") => {
                let id = require_u64(&j, "id", "span_close", lineno)?;
                let pos = open
                    .iter()
                    .position(|(oid, _, _)| *oid == id)
                    .ok_or_else(|| format!("line {lineno}: span {id} closed without open"))?;
                let (_, name, start_us) = open.swap_remove(pos);
                let dur = require_u64(&j, "dur_us", "span_close", lineno)?;
                raw.push(RawSpan {
                    name,
                    start_us,
                    end_us: start_us.saturating_add(dur),
                });
            }
            _ => {}
        }
    }
    Ok(chrome_trace(raw))
}

fn chrome_trace(mut spans: Vec<RawSpan>) -> String {
    // Longest-first at equal start so an enclosing span precedes the
    // spans it contains.
    spans.sort_by(|a, b| {
        a.start_us
            .cmp(&b.start_us)
            .then_with(|| b.end_us.cmp(&a.end_us))
    });
    // Greedy lane assignment: a lane holds a stack of open intervals; a
    // span joins the first lane where, after retiring intervals that
    // ended before it starts, it is either alone or properly nested in
    // the innermost open interval.
    let mut lanes: Vec<Vec<(u64, u64)>> = Vec::new();
    let mut placed: Vec<(usize, usize)> = Vec::with_capacity(spans.len()); // (lane, depth)
    for s in &spans {
        let mut slot = None;
        for (li, lane) in lanes.iter_mut().enumerate() {
            while lane.last().is_some_and(|&(_, end)| end <= s.start_us) {
                lane.pop();
            }
            let fits = match lane.last() {
                None => true,
                Some(&(start, end)) => start <= s.start_us && end >= s.end_us,
            };
            if fits {
                slot = Some((li, lane.len()));
                lane.push((s.start_us, s.end_us));
                break;
            }
        }
        placed.push(slot.unwrap_or_else(|| {
            lanes.push(vec![(s.start_us, s.end_us)]);
            (lanes.len() - 1, 0)
        }));
    }
    // One B and one E event per span; sort by (ts, E-before-B, depth) so
    // ties close inner spans before outer ones and open outer before
    // inner, keeping every lane's stack discipline intact.
    let mut events: Vec<(u64, u8, i64, usize)> = Vec::with_capacity(spans.len() * 2);
    for (i, s) in spans.iter().enumerate() {
        let depth = placed[i].1 as i64;
        events.push((s.start_us, 1, depth, i));
        events.push((s.end_us, 0, -depth, i));
    }
    events.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut out = String::from("{\"traceEvents\":[");
    for (n, &(ts, phase, _, i)) in events.iter().enumerate() {
        let s = &spans[i];
        let (lane, _) = placed[i];
        if n > 0 {
            out.push(',');
        }
        out.push_str("\n{\"ph\":\"");
        out.push(if phase == 1 { 'B' } else { 'E' });
        let _ = write!(
            out,
            "\",\"ts\":{ts},\"pid\":1,\"tid\":{},\"name\":",
            lane + 1
        );
        write_escaped(&mut out, &s.name);
        out.push('}');
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Maps a dotted metric name to the Prometheus charset: every character
/// outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit gains a `_`
/// prefix.
#[must_use]
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a metrics snapshot in the Prometheus text exposition format:
/// one `# TYPE` header per metric, cumulative `_bucket{le="..."}` series
/// (ending at `le="+Inf"`) plus `_sum` and `_count` for histograms.
#[must_use]
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, v) in &snap.gauges {
        let n = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, h) in &snap.histograms {
        let n = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cum = 0u64;
        for (i, &c) in h.bucket_counts().iter().enumerate() {
            cum += c;
            if i < h.bounds().len() {
                let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cum}", h.bounds()[i]);
            } else {
                let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {cum}");
            }
        }
        let _ = writeln!(out, "{n}_sum {}", h.sum());
        let _ = writeln!(out, "{n}_count {}", h.count());
    }
    out
}

/// One histogram reconstructed from a trace's `metric` + `metric_bucket`
/// summary events.
#[derive(Debug, Default, Clone)]
struct TraceHistogram {
    /// `(le label, cumulative count)` in emission order; the last entry
    /// is `("+Inf", total)`.
    buckets: Vec<(String, u64)>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Metrics reconstructed from the summary events of one trace.
#[derive(Debug, Default)]
struct TraceMetrics {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, TraceHistogram)>,
}

fn trace_metrics(text: &str) -> Result<TraceMetrics, String> {
    let mut m = TraceMetrics::default();
    for (lineno, line) in trace_lines(text) {
        let j = parse_trace_line(line, lineno)?;
        match j.get("ev").and_then(Json::as_str) {
            Some("metric") => {
                let kind = require_str(&j, "kind", "metric", lineno)?;
                let name = require_str(&j, "name", "metric", lineno)?.to_string();
                match kind {
                    "counter" => m
                        .counters
                        .push((name, require_u64(&j, "value", "metric", lineno)?)),
                    "gauge" => m
                        .gauges
                        .push((name, require_f64(&j, "value", "metric", lineno)?)),
                    "histogram" => m.histograms.push((
                        name,
                        TraceHistogram {
                            buckets: Vec::new(),
                            count: require_u64(&j, "count", "metric", lineno)?,
                            sum: require_f64(&j, "sum", "metric", lineno)?,
                            min: require_f64(&j, "min", "metric", lineno)?,
                            max: require_f64(&j, "max", "metric", lineno)?,
                        },
                    )),
                    other => return Err(format!("line {lineno}: unknown metric kind '{other}'")),
                }
            }
            Some("metric_bucket") => {
                let name = require_str(&j, "name", "metric_bucket", lineno)?;
                let le = require_str(&j, "le", "metric_bucket", lineno)?.to_string();
                let cum = require_u64(&j, "count", "metric_bucket", lineno)?;
                let h = m
                    .histograms
                    .iter_mut()
                    .find(|(n, _)| n == name)
                    .map(|(_, h)| h)
                    .ok_or_else(|| {
                        format!("line {lineno}: metric_bucket for unknown histogram '{name}'")
                    })?;
                h.buckets.push((le, cum));
            }
            _ => {}
        }
    }
    Ok(m)
}

/// Renders the Prometheus text exposition for a JSONL trace, using the
/// `metric` and `metric_bucket` summary events appended by
/// [`crate::Telemetry::finish`]. The output is byte-identical to
/// [`prometheus_text`] over the live snapshot the events were taken from.
///
/// # Errors
/// Returns a message on unparseable lines, schema mismatches or
/// malformed metric events.
pub fn prometheus_from_trace(text: &str) -> Result<String, String> {
    let m = trace_metrics(text)?;
    let mut out = String::new();
    for (name, v) in &m.counters {
        let n = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, v) in &m.gauges {
        let n = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, h) in &m.histograms {
        let n = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        for (le, cum) in &h.buckets {
            let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    Ok(out)
}

/// Renders a human-readable summary of a JSONL trace: event and span
/// statistics, counters, gauges and histogram percentiles.
///
/// # Errors
/// Returns a message on unparseable lines or schema mismatches.
pub fn summary_from_trace(text: &str) -> Result<String, String> {
    let stats = crate::check_trace(text)?;
    let m = trace_metrics(text)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} events, {} spans opened, {} closed",
        stats.events, stats.spans_opened, stats.spans_closed
    );
    for (name, v) in &m.counters {
        let _ = writeln!(out, "counter   {name:<32} {v}");
    }
    for (name, v) in &m.gauges {
        let _ = writeln!(out, "gauge     {name:<32} {v:.6}");
    }
    for (name, h) in &m.histograms {
        let (bounds, counts) = bucket_arrays(h);
        let pct = percentiles_from_buckets(
            &bounds,
            &counts,
            (h.min <= h.max).then_some(h.min),
            (h.min <= h.max).then_some(h.max),
        );
        match pct {
            Some(p) => {
                let _ = writeln!(
                    out,
                    "histogram {name:<32} count={} p50={:.6} p95={:.6} p99={:.6}",
                    p.count, p.p50, p.p95, p.p99
                );
            }
            None => {
                let _ = writeln!(out, "histogram {name:<32} count=0");
            }
        }
    }
    Ok(out)
}

/// Converts a reconstructed histogram's cumulative `(le, count)` pairs
/// back to per-bucket bounds and counts (the `+Inf` entry becomes the
/// overflow bucket).
fn bucket_arrays(h: &TraceHistogram) -> (Vec<f64>, Vec<u64>) {
    let mut bounds = Vec::new();
    let mut counts = Vec::new();
    let mut prev = 0u64;
    for (le, cum) in &h.buckets {
        let c = cum.saturating_sub(prev);
        prev = *cum;
        if le == "+Inf" {
            counts.push(c);
        } else if let Ok(b) = le.parse::<f64>() {
            bounds.push(b);
            counts.push(c);
        }
    }
    if counts.len() == bounds.len() {
        counts.push(0); // no +Inf entry recorded: empty overflow bucket
    }
    (bounds, counts)
}

// ---------------------------------------------------------------------------
// Shared trace-line plumbing
// ---------------------------------------------------------------------------

/// Non-empty lines with their 1-based line numbers.
fn trace_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .filter(|(_, l)| !l.trim().is_empty())
}

/// Parses one trace line and checks the schema version. The error wording
/// ("trace schema mismatch") is load-bearing: the CLI error classifier
/// keys on it.
fn parse_trace_line(line: &str, lineno: usize) -> Result<Json, String> {
    let j = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
    match j.get("v").and_then(Json::as_u64) {
        Some(v) if v == SCHEMA_VERSION => Ok(j),
        Some(v) => Err(format!(
            "trace schema mismatch: line {lineno} has version {v}, expected {SCHEMA_VERSION}"
        )),
        None => Err(format!(
            "trace schema mismatch: line {lineno} missing \"v\""
        )),
    }
}

fn require_u64(j: &Json, key: &str, ev: &str, lineno: usize) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {lineno}: {ev} without \"{key}\""))
}

fn require_f64(j: &Json, key: &str, ev: &str, lineno: usize) -> Result<f64, String> {
    match j.get(key) {
        Some(Json::Num(n)) => Ok(*n),
        // write_f64 encodes non-finite observations as null.
        Some(Json::Null) => Ok(f64::NAN),
        _ => Err(format!("line {lineno}: {ev} without \"{key}\"")),
    }
}

fn require_str<'a>(j: &'a Json, key: &str, ev: &str, lineno: usize) -> Result<&'a str, String> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("line {lineno}: {ev} without \"{key}\""))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Level, Telemetry};

    fn rec(id: u64, parent: u64, name: &'static str, start_us: u64, dur_us: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            start_us,
            dur_us,
        }
    }

    #[test]
    fn percentiles_interpolate_and_clamp() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 2.0, 3.0, 4.0, 5.0, 50.0] {
            h.observe(v);
        }
        let p = histogram_percentiles(&h).unwrap();
        assert_eq!(p.count, 6);
        assert!(p.p50 > 1.0 && p.p50 <= 10.0, "p50={}", p.p50);
        assert!(p.p95 > 10.0 && p.p95 <= 50.0, "p95={}", p.p95);
        assert!(p.p99 <= 50.0, "p99 clamped to observed max, {}", p.p99);
        assert!(histogram_percentiles(&Histogram::new(&[1.0])).is_none());
    }

    #[test]
    fn chrome_trace_is_balanced_with_monotonic_ts() {
        let records = vec![
            rec(1, 0, "tune_session", 0, 100),
            rec(2, 1, "rank", 5, 20),
            rec(3, 1, "trial", 30, 40),
            rec(4, 3, "predict", 31, 5),
            // Overlapping worker span: forced onto its own lane.
            rec(5, 1, "worker", 10, 60),
        ];
        let text = chrome_trace_from_spans(&records);
        let doc = json::parse(&text).unwrap();
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(evs)) => evs,
            other => panic!("expected traceEvents array, got {other:?}"),
        };
        assert_eq!(events.len(), records.len() * 2);
        // Monotonic ts and per-tid B/E stack discipline.
        let mut last_ts = 0;
        let mut stacks: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for e in events {
            let ts = e.get("ts").and_then(Json::as_u64).unwrap();
            assert!(ts >= last_ts, "ts went backwards");
            last_ts = ts;
            let tid = e.get("tid").and_then(Json::as_u64).unwrap();
            let depth = stacks.entry(tid).or_insert(0);
            match e.get("ph").and_then(Json::as_str).unwrap() {
                "B" => *depth += 1,
                "E" => {
                    assert!(*depth > 0, "E without matching B on tid {tid}");
                    *depth -= 1;
                }
                other => panic!("unexpected phase {other}"),
            }
        }
        assert!(stacks.values().all(|&d| d == 0), "unbalanced B/E events");
    }

    #[test]
    fn chrome_trace_round_trips_from_jsonl() {
        let (tel, sink) = Telemetry::recording(Level::Debug);
        {
            let s = tel.span("root");
            let _c = s.child("inner");
        }
        tel.finish();
        let from_records = chrome_trace_from_spans(&tel.span_records());
        let from_trace = chrome_trace_from_trace(&sink.lines().join("\n")).unwrap();
        assert_eq!(from_records, from_trace);
    }

    #[test]
    fn prometheus_round_trips_every_metric_exactly_once() {
        let (tel, sink) = Telemetry::recording(Level::Debug);
        tel.add("tune.cache_hits", 5);
        tel.gauge("rank.chunk_imbalance", 0.125);
        tel.observe("trial.sample_seconds", 2.5e-4);
        tel.observe("trial.sample_seconds", 0.35);
        tel.observe("trial.sample_seconds", 1e9); // overflow bucket
        tel.finish();
        let live = prometheus_text(&tel.metrics_snapshot().unwrap());
        let replayed = prometheus_from_trace(&sink.lines().join("\n")).unwrap();
        assert_eq!(live, replayed, "trace replay must match the live snapshot");
        // Every series appears exactly once.
        for needle in [
            "# TYPE tune_cache_hits counter",
            "tune_cache_hits 5",
            "# TYPE rank_chunk_imbalance gauge",
            "rank_chunk_imbalance 0.125",
            "# TYPE trial_sample_seconds histogram",
            "trial_sample_seconds_bucket{le=\"+Inf\"} 3",
            "trial_sample_seconds_count 3",
        ] {
            assert_eq!(
                live.matches(needle).count(),
                1,
                "expected exactly one {needle:?} in:\n{live}"
            );
        }
        // Buckets are cumulative: the +Inf bucket equals the count.
        let inf_line = live.lines().find(|l| l.contains("le=\"+Inf\"")).unwrap();
        assert!(inf_line.ends_with(" 3"), "{inf_line}");
    }

    #[test]
    fn summary_reports_stats_and_percentiles() {
        let (tel, sink) = Telemetry::recording(Level::Debug);
        {
            let _s = tel.span("root");
        }
        tel.inc("tune.model_evals");
        for v in [1e-4, 2e-4, 3e-4, 5e-2] {
            tel.observe("trial.sample_seconds", v);
        }
        tel.finish();
        let text = summary_from_trace(&sink.lines().join("\n")).unwrap();
        assert!(text.contains("1 spans opened"), "{text}");
        assert!(text.contains("counter   tune.model_evals"), "{text}");
        assert!(text.contains("p50="), "{text}");
        assert!(text.contains("count=4"), "{text}");
    }

    #[test]
    fn schema_mismatch_is_reported() {
        let bad = "{\"v\":9,\"ev\":\"metric\",\"t_us\":0}";
        let err = prometheus_from_trace(bad).unwrap_err();
        assert!(err.contains("trace schema mismatch"), "{err}");
        let err = chrome_trace_from_trace(bad).unwrap_err();
        assert!(err.contains("trace schema mismatch"), "{err}");
    }

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_metric_name("tune.cache_hits"), "tune_cache_hits");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("a-b c"), "a_b_c");
    }
}
