//! Structured telemetry for the YaskSite tuning pipeline: hierarchical
//! tracing spans, a metrics registry, and pluggable JSONL event sinks.
//!
//! # Design
//!
//! A [`Telemetry`] value is a cheap, cloneable handle — either *disabled*
//! (the default: every operation is a no-op on an `Option::None`, no
//! allocation, no lock) or backed by a shared session state holding a
//! monotonic epoch, a [`MetricsRegistry`], a span collector and an
//! [`EventSink`]. The tuning engine threads one handle through a whole
//! session (`TuneRequest` → ranking workers → trials), so clones taken by
//! scoped worker threads all record into the same session.
//!
//! **Spans** form a tree: [`Telemetry::span`] opens a root,
//! [`SpanGuard::child`] opens a child, and the RAII guard guarantees
//! every opened span is closed (and its `span_close` event emitted)
//! exactly once, even on early returns. Timing is monotonic
//! (`Instant`-based) and expressed as microseconds since the session
//! epoch.
//!
//! **Events** are single JSON objects, one per line (JSONL). Every line
//! carries the schema version (`"v"`, see [`SCHEMA_VERSION`]), the event
//! kind (`"ev"`) and the epoch-relative timestamp (`"t_us"`); span
//! open/close events add identity and parentage so a consumer can rebuild
//! the tree. The [`check_trace`] validator (also available as the
//! `trace_check` binary) enforces exactly this contract in CI.
//!
//! **Overhead**: with the [`NullSink`], no JSON is ever encoded — spans
//! and metrics still aggregate in memory so `--metrics` works without a
//! trace file. A disabled handle does nothing at all, which is what keeps
//! the determinism guarantee trivially intact: telemetry never touches
//! the numeric tuning path, it only observes it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
mod export;
pub mod json;
mod metrics;
mod sink;
mod span;
mod window;

pub use check::{check_trace, TraceStats};
pub use export::{
    chrome_trace_from_spans, chrome_trace_from_trace, histogram_percentiles,
    percentiles_from_buckets, prometheus_from_trace, prometheus_text, sanitize_metric_name,
    summary_from_trace, PercentileSummary,
};
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot, DEFAULT_SECONDS_BOUNDS};
pub use sink::{EventSink, MemorySink, NullSink, WriterSink};
pub use span::{render_span_tree, SpanRecord};
pub use window::{RollingCounter, RollingHistogram, WindowSnapshot, DEFAULT_MS_BOUNDS};

use std::fmt;
use std::fmt::Write as _;
use std::io;
use std::sync::Arc;
use std::time::Instant;

use span::SpanCollector;

/// Version of the JSONL event schema, emitted as `"v"` on every line.
/// Consumers must ignore lines with a version they do not understand.
pub const SCHEMA_VERSION: u64 = 1;

/// Event severity, ordered: an event is emitted only if its level is at
/// or above the handle's configured level (`Error` < `Info` < `Debug`,
/// so a `Level::Info` handle drops `Debug` events). Span open/close
/// events are structural and always pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Failures worth surfacing even in the quietest configuration.
    Error,
    /// Session milestones: start/end, fallbacks, budget exhaustion.
    Info,
    /// Per-sample detail (one event per backend invocation).
    Debug,
}

impl Level {
    /// Parses a CLI-style level name.
    #[must_use]
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    /// The CLI-style name (`"error"` / `"info"` / `"debug"`).
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// A typed event field value, encoded into the JSON line.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite encodes as JSON `null`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl Value {
    fn encode(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => json::write_f64(out, *v),
            Value::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(v) => json::write_escaped(out, v),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Shared per-session telemetry state.
struct Inner {
    epoch: Instant,
    level: Level,
    sink: Arc<dyn EventSink>,
    metrics: MetricsRegistry,
    spans: SpanCollector,
}

/// Cheap, cloneable telemetry handle. See the crate docs for the design;
/// the default handle is disabled and every operation on it is a no-op.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
    /// Event/span emission suppressed; metrics still aggregate. See
    /// [`Telemetry::quiet`].
    quiet: bool,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(inner) if self.quiet => {
                write!(f, "Telemetry(level={}, quiet)", inner.level.as_str())
            }
            Some(inner) => write!(f, "Telemetry(level={})", inner.level.as_str()),
            None => f.write_str("Telemetry(disabled)"),
        }
    }
}

impl Telemetry {
    /// The no-op handle (same as `Telemetry::default()`).
    #[must_use]
    pub fn disabled() -> Self {
        Telemetry {
            inner: None,
            quiet: false,
        }
    }

    /// An enabled handle emitting encoded events to `sink` at `level`.
    #[must_use]
    pub fn with_sink(sink: Arc<dyn EventSink>, level: Level) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                level,
                sink,
                metrics: MetricsRegistry::new(),
                spans: SpanCollector::default(),
            })),
            quiet: false,
        }
    }

    /// A handle sharing this session's metrics registry with event and
    /// span emission suppressed: counters, gauges and histograms keep
    /// aggregating into the same session, but no trace line is written
    /// and no span is recorded. This is what head-sampling hands to work
    /// past the sample budget — observability stays on, the trace stops
    /// growing. On a disabled handle this is still disabled.
    #[must_use]
    pub fn quiet(&self) -> Telemetry {
        Telemetry {
            inner: self.inner.clone(),
            quiet: true,
        }
    }

    /// Whether this handle is a [`Telemetry::quiet`] view.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.quiet
    }

    /// An enabled handle with the [`NullSink`]: spans and metrics are
    /// collected, no event line is ever encoded. This is the `--metrics`
    /// (without `--trace-out`) mode.
    #[must_use]
    pub fn null(level: Level) -> Self {
        Telemetry::with_sink(Arc::new(NullSink), level)
    }

    /// An enabled handle recording into a fresh [`MemorySink`], returned
    /// alongside so tests can inspect the lines.
    #[must_use]
    pub fn recording(level: Level) -> (Self, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        (
            Telemetry::with_sink(Arc::<MemorySink>::clone(&sink), level),
            sink,
        )
    }

    /// An enabled handle streaming JSONL to the file at `path`
    /// (truncating it), buffered; call [`Telemetry::finish`] to flush.
    ///
    /// # Errors
    /// Propagates the file-creation error.
    pub fn to_file(path: &str, level: Level) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        let sink = WriterSink::new(Box::new(io::BufWriter::new(file)));
        Ok(Telemetry::with_sink(Arc::new(sink), level))
    }

    /// Whether this handle records anything at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The configured event level, if enabled.
    #[must_use]
    pub fn level(&self) -> Option<Level> {
        self.inner.as_ref().map(|i| i.level)
    }

    fn now_us(inner: &Inner) -> u64 {
        u64::try_from(inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Opens a root span. The returned guard closes it on drop; use
    /// [`SpanGuard::child`] for nesting. On a disabled handle this is
    /// free and the guard is inert.
    #[must_use]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.open_span(0, name)
    }

    fn open_span(&self, parent: u64, name: &'static str) -> SpanGuard {
        let (id, start_us) = match &self.inner {
            Some(_) if self.quiet => (0, 0),
            Some(inner) => {
                let id = inner.spans.open();
                let start_us = Self::now_us(inner);
                if inner.sink.wants_events() {
                    let mut line = String::with_capacity(96);
                    let _ = write!(
                        line,
                        "{{\"v\":{SCHEMA_VERSION},\"ev\":\"span_open\",\"t_us\":{start_us},\"id\":{id},\"parent\":{parent},\"name\":"
                    );
                    json::write_escaped(&mut line, name);
                    line.push('}');
                    inner.sink.emit(&line);
                }
                (id, start_us)
            }
            None => (0, 0),
        };
        SpanGuard {
            tel: self.clone(),
            id,
            parent,
            name,
            start_us,
        }
    }

    /// Emits one event at `level`, attached to span `span_id` (0 for
    /// none), with extra `fields`. Dropped if the handle is disabled or
    /// the level is filtered out. Field keys must not collide with the
    /// envelope keys (`v`, `ev`, `t_us`, `span`, `level`).
    pub fn event(&self, level: Level, name: &str, span_id: u64, fields: &[(&str, Value)]) {
        let Some(inner) = &self.inner else {
            return;
        };
        if self.quiet || level > inner.level || !inner.sink.wants_events() {
            return;
        }
        let t_us = Self::now_us(inner);
        let mut line = String::with_capacity(128);
        let _ = write!(line, "{{\"v\":{SCHEMA_VERSION},\"ev\":");
        json::write_escaped(&mut line, name);
        let _ = write!(
            line,
            ",\"t_us\":{t_us},\"span\":{span_id},\"level\":\"{}\"",
            level.as_str()
        );
        for (key, value) in fields {
            line.push(',');
            json::write_escaped(&mut line, key);
            line.push(':');
            value.encode(&mut line);
        }
        line.push('}');
        inner.sink.emit(&line);
    }

    /// Emits an error event (always passes the level filter) and bumps
    /// the `errors` counter.
    pub fn error(&self, message: &str) {
        if !self.is_enabled() {
            return;
        }
        self.add("errors", 1);
        self.event(Level::Error, "error", 0, &[("message", message.into())]);
    }

    /// Adds 1 to counter `name`.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.add(name, n);
        }
    }

    /// Current value of counter `name` (0 when disabled or untouched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.metrics.counter(name))
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.set_gauge(name, v);
        }
    }

    /// Records `v` into histogram `name` (default seconds buckets).
    pub fn observe(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.observe(name, v);
        }
    }

    /// A point-in-time copy of the metrics, or `None` when disabled.
    #[must_use]
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|inner| inner.metrics.snapshot())
    }

    /// Spans opened so far.
    #[must_use]
    pub fn spans_opened(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.spans.opened())
    }

    /// Spans closed so far.
    #[must_use]
    pub fn spans_closed(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.spans.closed())
    }

    /// Spans currently open (opened minus closed).
    #[must_use]
    pub fn open_spans(&self) -> u64 {
        self.spans_opened() - self.spans_closed()
    }

    /// All closed spans recorded so far.
    #[must_use]
    pub fn span_records(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map(|i| i.spans.records())
            .unwrap_or_default()
    }

    /// The aggregated span-tree report (empty string when disabled).
    #[must_use]
    pub fn span_report(&self) -> String {
        if self.inner.is_some() {
            render_span_tree(&self.span_records())
        } else {
            String::new()
        }
    }

    /// Ends the session: emits one `metric` summary event per counter,
    /// gauge and histogram (histograms additionally emit one
    /// `metric_bucket` event per bucket with the cumulative count, so a
    /// consumer can rebuild the exact Prometheus exposition), then
    /// flushes the sink. Call once, after all spans are closed; safe
    /// (and a no-op) on a disabled handle.
    pub fn finish(&self) {
        let Some(inner) = &self.inner else {
            return;
        };
        if !self.quiet && inner.sink.wants_events() {
            let snapshot = inner.metrics.snapshot();
            for (name, v) in &snapshot.counters {
                self.event(
                    Level::Error, // summary lines always pass the filter
                    "metric",
                    0,
                    &[
                        ("kind", "counter".into()),
                        ("name", name.as_str().into()),
                        ("value", (*v).into()),
                    ],
                );
            }
            for (name, v) in &snapshot.gauges {
                self.event(
                    Level::Error,
                    "metric",
                    0,
                    &[
                        ("kind", "gauge".into()),
                        ("name", name.as_str().into()),
                        ("value", (*v).into()),
                    ],
                );
            }
            for (name, h) in &snapshot.histograms {
                self.event(
                    Level::Error,
                    "metric",
                    0,
                    &[
                        ("kind", "histogram".into()),
                        ("name", name.as_str().into()),
                        ("count", h.count().into()),
                        ("sum", h.sum().into()),
                        ("min", h.min().unwrap_or(0.0).into()),
                        ("max", h.max().unwrap_or(0.0).into()),
                    ],
                );
                let mut cum = 0u64;
                for (i, &c) in h.bucket_counts().iter().enumerate() {
                    cum += c;
                    let le = match h.bounds().get(i) {
                        Some(b) => format!("{b}"),
                        None => "+Inf".to_string(),
                    };
                    self.event(
                        Level::Error,
                        "metric_bucket",
                        0,
                        &[
                            ("name", name.as_str().into()),
                            ("le", le.into()),
                            ("count", cum.into()),
                        ],
                    );
                }
            }
        }
        inner.sink.flush();
    }
}

/// RAII guard of one open span. Dropping it closes the span: the
/// duration is recorded into the collector and a `span_close` event is
/// emitted, so open/close events are balanced by construction.
#[derive(Debug)]
pub struct SpanGuard {
    tel: Telemetry,
    id: u64,
    parent: u64,
    name: &'static str,
    start_us: u64,
}

impl SpanGuard {
    /// This span's id (0 on a disabled handle) — what events attach to.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Opens a child span. Callable from any thread (worker threads of a
    /// scoped pool take children of the session span).
    #[must_use]
    pub fn child(&self, name: &'static str) -> SpanGuard {
        self.tel.open_span(self.id, name)
    }

    /// The telemetry handle this guard records into.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.tel.quiet {
            return;
        }
        let Some(inner) = &self.tel.inner else {
            return;
        };
        let now = Telemetry::now_us(inner);
        let dur_us = now.saturating_sub(self.start_us);
        if inner.sink.wants_events() {
            let mut line = String::with_capacity(96);
            let _ = write!(
                line,
                "{{\"v\":{SCHEMA_VERSION},\"ev\":\"span_close\",\"t_us\":{now},\"id\":{},\"dur_us\":{dur_us},\"name\":",
                self.id
            );
            json::write_escaped(&mut line, self.name);
            line.push('}');
            inner.sink.emit(&line);
        }
        inner.spans.close(SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_us: self.start_us,
            dur_us,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        let s = tel.span("root");
        assert_eq!(s.id(), 0);
        let c = s.child("inner");
        assert_eq!(c.id(), 0);
        tel.inc("n");
        tel.observe("h", 1.0);
        tel.event(Level::Error, "e", 0, &[]);
        tel.error("nope");
        tel.finish();
        assert_eq!(tel.counter("n"), 0);
        assert!(tel.metrics_snapshot().is_none());
        assert_eq!(tel.open_spans(), 0);
        assert_eq!(tel.span_report(), "");
    }

    #[test]
    fn spans_nest_and_balance() {
        let (tel, sink) = Telemetry::recording(Level::Debug);
        {
            let session = tel.span("tune_session");
            {
                let rank = session.child("rank");
                assert_eq!(tel.open_spans(), 2);
                drop(rank);
            }
            let trial = session.child("trial");
            let _predict = trial.child("predict");
            assert_eq!(tel.open_spans(), 3);
        }
        assert_eq!(tel.open_spans(), 0);
        assert_eq!(tel.spans_opened(), 4);
        assert_eq!(tel.spans_closed(), 4);
        // Parentage is recorded: predict's parent is trial, trial's and
        // rank's parent is the session, the session is a root.
        let records = tel.span_records();
        let by_name = |n: &str| records.iter().find(|r| r.name == n).unwrap();
        assert_eq!(by_name("tune_session").parent, 0);
        assert_eq!(by_name("rank").parent, by_name("tune_session").id);
        assert_eq!(by_name("predict").parent, by_name("trial").id);
        // Every open has a matching close in the stream.
        let lines = sink.lines();
        let opens = lines.iter().filter(|l| l.contains("span_open")).count();
        let closes = lines.iter().filter(|l| l.contains("span_close")).count();
        assert_eq!(opens, 4);
        assert_eq!(closes, 4);
        check_trace(&lines.join("\n")).expect("stream validates");
    }

    #[test]
    fn guard_balances_on_early_return() {
        let tel = Telemetry::null(Level::Info);
        fn inner(tel: &Telemetry) -> Result<(), ()> {
            let _span = tel.span("may_fail");
            Err(())
        }
        let _ = inner(&tel);
        assert_eq!(
            tel.open_spans(),
            0,
            "drop closed the span on the error path"
        );
    }

    #[test]
    fn level_filters_events_but_not_spans() {
        let (tel, sink) = Telemetry::recording(Level::Info);
        let s = tel.span("root");
        tel.event(Level::Debug, "noisy", s.id(), &[]);
        tel.event(Level::Info, "kept", s.id(), &[("n", 3u64.into())]);
        drop(s);
        let lines = sink.lines();
        assert!(!lines.iter().any(|l| l.contains("noisy")));
        assert!(lines.iter().any(|l| l.contains("\"kept\"")));
        assert_eq!(
            lines.iter().filter(|l| l.contains("span_")).count(),
            2,
            "span events bypass the level filter"
        );
    }

    #[test]
    fn every_line_is_valid_json_with_required_keys() {
        let (tel, sink) = Telemetry::recording(Level::Debug);
        let s = tel.span("root");
        tel.event(
            Level::Info,
            "sample",
            s.id(),
            &[
                ("seconds", 1.25e-3.into()),
                ("ok", true.into()),
                ("why", "ba\"ckslash\\and\nnewline".into()),
            ],
        );
        tel.inc("tune.cache_hits");
        tel.observe("trial.sample_seconds", 1.25e-3);
        drop(s);
        tel.finish();
        for line in sink.lines() {
            let j = json::parse(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
            assert_eq!(
                j.get("v").and_then(json::Json::as_u64),
                Some(SCHEMA_VERSION)
            );
            assert!(j.get("ev").and_then(json::Json::as_str).is_some());
            assert!(j.get("t_us").and_then(json::Json::as_u64).is_some());
        }
        // finish() emitted metric summaries for the counter + histogram,
        // plus one metric_bucket line per histogram bucket (9 bounds +
        // the overflow bucket).
        let metrics: Vec<_> = sink
            .lines()
            .into_iter()
            .filter(|l| l.contains("\"ev\":\"metric\""))
            .collect();
        assert_eq!(metrics.len(), 2);
        let buckets: Vec<_> = sink
            .lines()
            .into_iter()
            .filter(|l| l.contains("\"ev\":\"metric_bucket\""))
            .collect();
        assert_eq!(buckets.len(), DEFAULT_SECONDS_BOUNDS.len() + 1);
        assert!(buckets.iter().any(|l| l.contains("\"le\":\"+Inf\"")));
    }

    #[test]
    fn null_sink_collects_metrics_without_lines() {
        let tel = Telemetry::null(Level::Debug);
        let s = tel.span("root");
        tel.inc("hits");
        tel.event(Level::Info, "anything", s.id(), &[]);
        drop(s);
        tel.finish();
        assert_eq!(tel.counter("hits"), 1);
        assert_eq!(tel.spans_closed(), 1);
        assert!(tel.span_report().contains("root"));
    }

    #[test]
    fn error_counts_and_emits() {
        let (tel, sink) = Telemetry::recording(Level::Error);
        tel.error("backend exploded");
        assert_eq!(tel.counter("errors"), 1);
        let lines = sink.lines();
        assert!(lines[0].contains("backend exploded"));
        assert!(lines[0].contains("\"error\""));
    }

    #[test]
    fn clones_share_the_session() {
        let tel = Telemetry::null(Level::Info);
        let clone = tel.clone();
        clone.inc("shared");
        assert_eq!(tel.counter("shared"), 1);
        std::thread::scope(|scope| {
            let t = &tel;
            scope.spawn(move || {
                let s = t.span("worker");
                t.inc("shared");
                drop(s);
            });
        });
        assert_eq!(tel.counter("shared"), 2);
        assert_eq!(tel.open_spans(), 0);
    }

    #[test]
    fn quiet_handle_aggregates_metrics_without_emitting() {
        let (tel, sink) = Telemetry::recording(Level::Debug);
        let q = tel.quiet();
        assert!(q.is_quiet() && !tel.is_quiet());
        assert!(q.is_enabled());
        // Metrics flow into the shared session...
        q.inc("shared.counter");
        q.observe("shared.hist", 0.5);
        q.gauge("shared.gauge", 2.0);
        assert_eq!(tel.counter("shared.counter"), 1);
        // ...but no event, span or error line is ever written.
        let s = q.span("silent");
        assert_eq!(s.id(), 0);
        let c = s.child("also_silent");
        q.event(Level::Error, "nope", c.id(), &[]);
        q.error("counted but not emitted");
        drop(c);
        drop(s);
        q.finish();
        assert!(sink.is_empty(), "quiet handle wrote {:?}", sink.lines());
        assert_eq!(tel.counter("errors"), 1);
        assert_eq!(tel.spans_opened(), 0, "quiet spans are not recorded");
        // The loud handle still works as before.
        let loud = tel.span("loud");
        drop(loud);
        assert!(sink.lines().iter().any(|l| l.contains("span_open")));
    }

    #[test]
    fn level_parse_round_trips() {
        for l in [Level::Error, Level::Info, Level::Debug] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("verbose"), None);
        assert!(Level::Error < Level::Info && Level::Info < Level::Debug);
    }
}
