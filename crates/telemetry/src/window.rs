//! Rolling-window metrics: bounded-memory histograms and counters that
//! answer "what happened over the last N seconds" instead of "what
//! happened since the process started".
//!
//! The daemon (`yasksite serve`) runs for days; cumulative histograms
//! from [`crate::MetricsRegistry`] would answer every `status` request
//! with lifetime percentiles, hiding the last minute behind hours of
//! history. A [`RollingHistogram`] slices time into a fixed number of
//! slots (ring of `slots` sub-histograms, each covering
//! `window/slots` seconds) and aggregates only the slots inside the
//! window at snapshot time, so p50/p95/p99 track *recent* behaviour
//! with memory bounded by `slots × (bounds + 1)` regardless of traffic.
//!
//! Time is always passed in explicitly (seconds since an arbitrary
//! caller-chosen epoch). That keeps the type deterministic under test —
//! property suites drive it with synthetic clocks — and keeps the
//! telemetry layer free of hidden wall-clock reads.
//!
//! Windows of the same shape (identical bounds, slot width and slot
//! count) merge associatively: merging is per-slot count addition
//! followed by pruning to the newest `slots` slot indices, so
//! `(a ⊎ b) ⊎ c` and `a ⊎ (b ⊎ c)` retain exactly the same slots with
//! the same totals. This is what lets per-tenant windows roll up into a
//! per-kind aggregate without re-observing anything.

use std::collections::BTreeMap;

use crate::export::{percentiles_from_buckets, PercentileSummary};

/// Default bucket bounds (milliseconds) for request-latency windows:
/// 50 µs to one minute, roughly logarithmic. Inclusive upper edges, an
/// implicit overflow bucket above the last bound.
pub const DEFAULT_MS_BOUNDS: [f64; 12] = [
    0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1_000.0, 5_000.0, 60_000.0,
];

/// One time slot's sub-histogram.
#[derive(Debug, Clone, PartialEq)]
struct Slot {
    /// Per-bucket counts; `len == bounds.len() + 1` (last = overflow).
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Slot {
    fn empty(buckets: usize) -> Self {
        Slot {
            counts: vec![0; buckets],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn absorb(&mut self, other: &Slot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A time-windowed histogram: observations carry an explicit timestamp,
/// snapshots aggregate only the last `window` seconds, memory stays
/// bounded by the slot count no matter how many events flow through.
///
/// Window membership is resolved at slot granularity (`window/slots`
/// seconds): an observation is guaranteed visible to snapshots taken
/// within `window - slot` seconds of it and guaranteed expired after
/// `window + slot` seconds. Merging requires identical shape (bounds,
/// slot width, slot count) and is associative and commutative.
#[derive(Debug, Clone, PartialEq)]
pub struct RollingHistogram {
    bounds: Vec<f64>,
    slot_secs: f64,
    slot_cap: usize,
    slots: BTreeMap<u64, Slot>,
}

impl RollingHistogram {
    /// A window covering `window_secs`, split into `slots` time slots,
    /// with the given bucket `bounds` (sorted ascending, inclusive upper
    /// edges; values above the last bound land in an overflow bucket).
    ///
    /// # Panics
    /// If `window_secs` is not positive and finite, `slots` is zero, or
    /// `bounds` is empty or unsorted.
    #[must_use]
    pub fn new(window_secs: f64, slots: usize, bounds: &[f64]) -> Self {
        assert!(
            window_secs.is_finite() && window_secs > 0.0,
            "window must be positive"
        );
        assert!(slots > 0, "at least one slot");
        assert!(!bounds.is_empty(), "at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be sorted ascending"
        );
        RollingHistogram {
            bounds: bounds.to_vec(),
            slot_secs: window_secs / slots as f64,
            slot_cap: slots,
            slots: BTreeMap::new(),
        }
    }

    /// The standard request-latency window: last `window_secs` seconds
    /// in 8 slots over [`DEFAULT_MS_BOUNDS`] millisecond buckets.
    #[must_use]
    pub fn for_latency_ms(window_secs: f64) -> Self {
        RollingHistogram::new(window_secs, 8, &DEFAULT_MS_BOUNDS)
    }

    /// The window length in seconds.
    #[must_use]
    pub fn window_secs(&self) -> f64 {
        self.slot_secs * self.slot_cap as f64
    }

    /// Slots currently retained — bounded by the configured slot count.
    #[must_use]
    pub fn live_slots(&self) -> usize {
        self.slots.len()
    }

    /// The configured upper bound on retained slots.
    #[must_use]
    pub fn slot_cap(&self) -> usize {
        self.slot_cap
    }

    fn slot_index(&self, t_secs: f64) -> u64 {
        if !t_secs.is_finite() || t_secs <= 0.0 {
            return 0;
        }
        let idx = (t_secs / self.slot_secs).floor();
        if idx >= u64::MAX as f64 {
            u64::MAX
        } else {
            idx as u64
        }
    }

    /// Records `v` at time `t_secs` (seconds since the caller's epoch).
    /// Non-finite values count toward the overflow bucket but are
    /// excluded from sum/min/max, matching [`crate::Histogram`].
    pub fn observe_at(&mut self, t_secs: f64, v: f64) {
        let idx = self.slot_index(t_secs);
        let buckets = self.bounds.len() + 1;
        let slot = self
            .slots
            .entry(idx)
            .or_insert_with(|| Slot::empty(buckets));
        let pos = if v.is_finite() {
            self.bounds
                .iter()
                .position(|b| v <= *b)
                .unwrap_or(self.bounds.len())
        } else {
            self.bounds.len()
        };
        slot.counts[pos] += 1;
        slot.count += 1;
        if v.is_finite() {
            slot.sum += v;
            slot.min = slot.min.min(v);
            slot.max = slot.max.max(v);
        }
        self.prune();
    }

    /// Drops every slot older than the newest `slot_cap` slot indices —
    /// the memory bound. Newest-relative (not now-relative) so merging
    /// stays associative.
    fn prune(&mut self) {
        if let Some(&newest) = self.slots.keys().next_back() {
            let keep_from = newest.saturating_sub(self.slot_cap as u64 - 1);
            self.slots = self.slots.split_off(&keep_from);
        }
    }

    /// Merges `other` (same shape) into `self`. Associative and
    /// commutative up to the shared memory bound.
    ///
    /// # Panics
    /// If the two windows differ in bounds, slot width or slot count.
    pub fn merge_from(&mut self, other: &RollingHistogram) {
        assert_eq!(self.bounds, other.bounds, "merge needs identical bounds");
        assert_eq!(
            self.slot_secs.to_bits(),
            other.slot_secs.to_bits(),
            "merge needs identical slot width"
        );
        assert_eq!(
            self.slot_cap, other.slot_cap,
            "merge needs identical slot count"
        );
        for (idx, slot) in &other.slots {
            self.slots
                .entry(*idx)
                .or_insert_with(|| Slot::empty(self.bounds.len() + 1))
                .absorb(slot);
        }
        self.prune();
    }

    /// Aggregate of every slot inside the window ending at `t_secs`
    /// (slots newer than `t_secs` are excluded too — a snapshot never
    /// sees the future).
    #[must_use]
    pub fn snapshot_at(&self, t_secs: f64) -> WindowSnapshot {
        let now_idx = self.slot_index(t_secs);
        let from = now_idx.saturating_sub(self.slot_cap as u64 - 1);
        let mut total = Slot::empty(self.bounds.len() + 1);
        for (_, slot) in self.slots.range(from..=now_idx) {
            total.absorb(slot);
        }
        WindowSnapshot {
            bounds: self.bounds.clone(),
            counts: total.counts,
            count: total.count,
            sum: total.sum,
            min: (total.min.is_finite()).then_some(total.min),
            max: (total.max.is_finite()).then_some(total.max),
        }
    }
}

/// Point-in-time aggregate of a [`RollingHistogram`]'s live window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// Bucket bounds (inclusive upper edges).
    pub bounds: Vec<f64>,
    /// Per-bucket counts, `bounds.len() + 1` entries (last = overflow).
    pub counts: Vec<u64>,
    /// Observations in the window.
    pub count: u64,
    /// Sum of finite observations in the window.
    pub sum: f64,
    /// Smallest finite observation, if any.
    pub min: Option<f64>,
    /// Largest finite observation, if any.
    pub max: Option<f64>,
}

impl WindowSnapshot {
    /// p50/p95/p99 estimates over the window, or `None` when empty.
    #[must_use]
    pub fn percentiles(&self) -> Option<PercentileSummary> {
        percentiles_from_buckets(&self.bounds, &self.counts, self.min, self.max)
    }

    /// Mean of finite observations, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// A time-windowed counter: how many events landed in the last N
/// seconds, with the same slot ring and merge semantics as
/// [`RollingHistogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct RollingCounter {
    slot_secs: f64,
    slot_cap: usize,
    slots: BTreeMap<u64, u64>,
}

impl RollingCounter {
    /// A window covering `window_secs`, split into `slots` slots.
    ///
    /// # Panics
    /// If `window_secs` is not positive and finite or `slots` is zero.
    #[must_use]
    pub fn new(window_secs: f64, slots: usize) -> Self {
        assert!(
            window_secs.is_finite() && window_secs > 0.0,
            "window must be positive"
        );
        assert!(slots > 0, "at least one slot");
        RollingCounter {
            slot_secs: window_secs / slots as f64,
            slot_cap: slots,
            slots: BTreeMap::new(),
        }
    }

    /// The window length in seconds.
    #[must_use]
    pub fn window_secs(&self) -> f64 {
        self.slot_secs * self.slot_cap as f64
    }

    /// Slots currently retained — bounded by the configured slot count.
    #[must_use]
    pub fn live_slots(&self) -> usize {
        self.slots.len()
    }

    fn slot_index(&self, t_secs: f64) -> u64 {
        if !t_secs.is_finite() || t_secs <= 0.0 {
            return 0;
        }
        let idx = (t_secs / self.slot_secs).floor();
        if idx >= u64::MAX as f64 {
            u64::MAX
        } else {
            idx as u64
        }
    }

    /// Adds `n` events at time `t_secs`.
    pub fn add_at(&mut self, t_secs: f64, n: u64) {
        let idx = self.slot_index(t_secs);
        *self.slots.entry(idx).or_insert(0) += n;
        if let Some(&newest) = self.slots.keys().next_back() {
            let keep_from = newest.saturating_sub(self.slot_cap as u64 - 1);
            self.slots = self.slots.split_off(&keep_from);
        }
    }

    /// Events inside the window ending at `t_secs`.
    #[must_use]
    pub fn total_at(&self, t_secs: f64) -> u64 {
        let now_idx = self.slot_index(t_secs);
        let from = now_idx.saturating_sub(self.slot_cap as u64 - 1);
        self.slots.range(from..=now_idx).map(|(_, n)| *n).sum()
    }

    /// Events per second over the window ending at `t_secs`.
    #[must_use]
    pub fn rate_at(&self, t_secs: f64) -> f64 {
        self.total_at(t_secs) as f64 / self.window_secs()
    }

    /// Merges `other` (same shape) into `self`.
    ///
    /// # Panics
    /// If the two windows differ in slot width or slot count.
    pub fn merge_from(&mut self, other: &RollingCounter) {
        assert_eq!(
            self.slot_secs.to_bits(),
            other.slot_secs.to_bits(),
            "merge needs identical slot width"
        );
        assert_eq!(
            self.slot_cap, other.slot_cap,
            "merge needs identical slot count"
        );
        for (idx, n) in &other.slots {
            *self.slots.entry(*idx).or_insert(0) += n;
        }
        if let Some(&newest) = self.slots.keys().next_back() {
            let keep_from = newest.saturating_sub(self.slot_cap as u64 - 1);
            self.slots = self.slots.split_off(&keep_from);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist() -> RollingHistogram {
        // 8-second window, 4 slots of 2 s, tiny bounds for readability.
        RollingHistogram::new(8.0, 4, &[1.0, 10.0, 100.0])
    }

    #[test]
    fn observations_inside_the_window_are_counted() {
        let mut h = hist();
        h.observe_at(0.5, 5.0);
        h.observe_at(1.5, 50.0);
        let s = h.snapshot_at(2.0);
        assert_eq!(s.count, 2);
        assert_eq!(s.counts, vec![0, 1, 1, 0]);
        assert_eq!(s.min, Some(5.0));
        assert_eq!(s.max, Some(50.0));
        let p = s.percentiles().expect("non-empty");
        assert_eq!(p.count, 2);
        assert!(p.p50 <= p.p95 && p.p95 <= p.p99);
    }

    #[test]
    fn old_observations_expire() {
        let mut h = hist();
        h.observe_at(0.0, 5.0);
        assert_eq!(h.snapshot_at(1.0).count, 1);
        // Ten seconds later the 8-second window has moved past it.
        assert_eq!(h.snapshot_at(10.0).count, 0);
        // And once newer observations arrive, the old slot is pruned.
        h.observe_at(10.0, 7.0);
        assert_eq!(h.live_slots(), 1);
    }

    #[test]
    fn snapshot_never_sees_the_future() {
        let mut h = hist();
        h.observe_at(6.0, 5.0);
        assert_eq!(h.snapshot_at(2.0).count, 0, "future slots excluded");
        assert_eq!(h.snapshot_at(6.0).count, 1);
    }

    #[test]
    fn memory_stays_bounded() {
        let mut h = hist();
        for i in 0..10_000 {
            h.observe_at(i as f64 * 3.7, 1.0);
            assert!(h.live_slots() <= h.slot_cap());
        }
    }

    #[test]
    fn merge_matches_interleaved_observation() {
        let mut all = hist();
        let mut a = hist();
        let mut b = hist();
        for i in 0..50 {
            let (t, v) = (i as f64 * 0.3, (i % 7) as f64 * 3.0);
            all.observe_at(t, v);
            if i % 2 == 0 {
                a.observe_at(t, v);
            } else {
                b.observe_at(t, v);
            }
        }
        let mut merged = a.clone();
        merged.merge_from(&b);
        assert_eq!(merged, all);
        // Commutes.
        let mut other_way = b;
        other_way.merge_from(&a);
        assert_eq!(other_way, merged);
    }

    #[test]
    fn non_finite_values_go_to_overflow_without_poisoning_stats() {
        let mut h = hist();
        h.observe_at(0.0, f64::NAN);
        h.observe_at(0.0, f64::INFINITY);
        h.observe_at(0.0, 2.0);
        let s = h.snapshot_at(0.0);
        assert_eq!(s.count, 3);
        assert_eq!(s.counts[3], 2, "non-finite in overflow");
        assert_eq!(s.min, Some(2.0));
        assert_eq!(s.max, Some(2.0));
        assert_eq!(s.sum, 2.0);
    }

    #[test]
    fn rolling_counter_window_and_rate() {
        let mut c = RollingCounter::new(10.0, 5);
        c.add_at(0.0, 3);
        c.add_at(4.0, 2);
        assert_eq!(c.total_at(4.0), 5);
        assert!((c.rate_at(4.0) - 0.5).abs() < 1e-12);
        // Window slides past the first burst.
        assert_eq!(c.total_at(13.0), 2);
        assert_eq!(c.total_at(30.0), 0);
        let mut d = RollingCounter::new(10.0, 5);
        d.add_at(4.0, 1);
        c.merge_from(&d);
        assert_eq!(c.total_at(4.0), 6);
        assert!(c.live_slots() <= 5);
    }
}
