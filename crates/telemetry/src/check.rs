//! Trace stream validation: the contract CI enforces on every JSONL
//! trace the pipeline emits.
//!
//! A valid trace has, on every non-empty line, a JSON object carrying the
//! schema version `"v"` (equal to [`crate::SCHEMA_VERSION`]), an event
//! kind `"ev"` (string) and a timestamp `"t_us"` (non-negative integer);
//! and its `span_open`/`span_close` events pair up exactly (every close
//! names a currently open id, every open is eventually closed). The
//! `trace_check` binary wraps [`check_trace`] for shell use.

use std::collections::HashSet;

use crate::json::{self, Json};
use crate::SCHEMA_VERSION;

/// What a validated trace contained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total event lines (including span events).
    pub events: usize,
    /// `span_open` events seen.
    pub spans_opened: usize,
    /// `span_close` events seen.
    pub spans_closed: usize,
}

/// Validates a JSONL trace stream (see the module docs for the
/// contract). Empty lines are ignored.
///
/// # Errors
/// Returns a message naming the first offending line (1-based) and what
/// was wrong with it.
pub fn check_trace(text: &str) -> Result<TraceStats, String> {
    let mut stats = TraceStats::default();
    let mut open: HashSet<u64> = HashSet::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        let j = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if !matches!(j, Json::Obj(_)) {
            return Err(format!("line {lineno}: not a JSON object"));
        }
        match j.get("v").and_then(Json::as_u64) {
            Some(v) if v == SCHEMA_VERSION => {}
            Some(v) => {
                return Err(format!(
                    "line {lineno}: schema version {v}, expected {SCHEMA_VERSION}"
                ))
            }
            None => return Err(format!("line {lineno}: missing \"v\"")),
        }
        let ev = j
            .get("ev")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {lineno}: missing \"ev\""))?;
        if j.get("t_us").and_then(Json::as_u64).is_none() {
            return Err(format!("line {lineno}: missing \"t_us\""));
        }
        stats.events += 1;
        match ev {
            "span_open" => {
                let id = j
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("line {lineno}: span_open without \"id\""))?;
                if !open.insert(id) {
                    return Err(format!("line {lineno}: span {id} opened twice"));
                }
                stats.spans_opened += 1;
            }
            "span_close" => {
                let id = j
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("line {lineno}: span_close without \"id\""))?;
                if !open.remove(&id) {
                    return Err(format!(
                        "line {lineno}: span {id} closed without being open"
                    ));
                }
                stats.spans_closed += 1;
            }
            _ => {}
        }
    }
    if !open.is_empty() {
        let mut ids: Vec<u64> = open.into_iter().collect();
        ids.sort_unstable();
        return Err(format!("unbalanced trace: spans {ids:?} never closed"));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_balanced_stream() {
        let trace = concat!(
            "{\"v\":1,\"ev\":\"span_open\",\"t_us\":0,\"id\":1,\"parent\":0,\"name\":\"s\"}\n",
            "{\"v\":1,\"ev\":\"sample\",\"t_us\":5,\"span\":1,\"level\":\"debug\",\"seconds\":0.001}\n",
            "\n",
            "{\"v\":1,\"ev\":\"span_close\",\"t_us\":9,\"id\":1,\"dur_us\":9,\"name\":\"s\"}\n",
        );
        let stats = check_trace(trace).unwrap();
        assert_eq!(
            stats,
            TraceStats {
                events: 3,
                spans_opened: 1,
                spans_closed: 1
            }
        );
    }

    #[test]
    fn rejects_unbalanced_and_malformed_streams() {
        let unclosed =
            "{\"v\":1,\"ev\":\"span_open\",\"t_us\":0,\"id\":7,\"parent\":0,\"name\":\"s\"}";
        assert!(check_trace(unclosed).unwrap_err().contains("never closed"));

        let unopened =
            "{\"v\":1,\"ev\":\"span_close\",\"t_us\":0,\"id\":7,\"dur_us\":0,\"name\":\"s\"}";
        assert!(check_trace(unopened)
            .unwrap_err()
            .contains("without being open"));

        assert!(check_trace("not json").unwrap_err().contains("line 1"));
        assert!(check_trace("{\"ev\":\"x\",\"t_us\":0}")
            .unwrap_err()
            .contains("missing \"v\""));
        assert!(check_trace("{\"v\":1,\"t_us\":0}")
            .unwrap_err()
            .contains("missing \"ev\""));
        assert!(check_trace("{\"v\":1,\"ev\":\"x\"}")
            .unwrap_err()
            .contains("missing \"t_us\""));
        assert!(check_trace("{\"v\":99,\"ev\":\"x\",\"t_us\":0}")
            .unwrap_err()
            .contains("schema version 99"));
    }

    #[test]
    fn rejects_double_open() {
        let trace = concat!(
            "{\"v\":1,\"ev\":\"span_open\",\"t_us\":0,\"id\":1,\"parent\":0,\"name\":\"a\"}\n",
            "{\"v\":1,\"ev\":\"span_open\",\"t_us\":1,\"id\":1,\"parent\":0,\"name\":\"b\"}\n",
        );
        assert!(check_trace(trace).unwrap_err().contains("opened twice"));
    }

    #[test]
    fn empty_stream_is_valid() {
        assert_eq!(check_trace("").unwrap(), TraceStats::default());
    }
}
