//! Trace stream validation: the contract CI enforces on every JSONL
//! trace the pipeline emits.
//!
//! A valid trace has, on every non-empty line, a JSON object carrying the
//! schema version `"v"` (equal to [`crate::SCHEMA_VERSION`]), an event
//! kind `"ev"` (string) and a timestamp `"t_us"` (non-negative integer);
//! and its `span_open`/`span_close` events pair up exactly (every close
//! names a currently open id, every open is eventually closed). Known
//! structured kinds are checked field-wise: `metric` / `metric_bucket`
//! summaries, the profiler's `profile` / `profile_pool` events and the
//! drift ledger's `drift` / `drift_summary` events. The `trace_check`
//! binary wraps [`check_trace`] for shell use.

use std::collections::HashSet;

use crate::json::{self, Json};
use crate::SCHEMA_VERSION;

/// What a validated trace contained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total event lines (including span events).
    pub events: usize,
    /// `span_open` events seen.
    pub spans_opened: usize,
    /// `span_close` events seen.
    pub spans_closed: usize,
}

/// Validates a JSONL trace stream (see the module docs for the
/// contract). Empty lines are ignored.
///
/// # Errors
/// Returns a message naming the first offending line (1-based) and what
/// was wrong with it.
pub fn check_trace(text: &str) -> Result<TraceStats, String> {
    let mut stats = TraceStats::default();
    let mut open: HashSet<u64> = HashSet::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        let j = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if !matches!(j, Json::Obj(_)) {
            return Err(format!("line {lineno}: not a JSON object"));
        }
        match j.get("v").and_then(Json::as_u64) {
            Some(v) if v == SCHEMA_VERSION => {}
            Some(v) => {
                return Err(format!(
                    "line {lineno}: schema version {v}, expected {SCHEMA_VERSION}"
                ))
            }
            None => return Err(format!("line {lineno}: missing \"v\"")),
        }
        let ev = j
            .get("ev")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {lineno}: missing \"ev\""))?;
        if j.get("t_us").and_then(Json::as_u64).is_none() {
            return Err(format!("line {lineno}: missing \"t_us\""));
        }
        stats.events += 1;
        match ev {
            "span_open" => {
                let id = j
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("line {lineno}: span_open without \"id\""))?;
                if !open.insert(id) {
                    return Err(format!("line {lineno}: span {id} opened twice"));
                }
                stats.spans_opened += 1;
            }
            "span_close" => {
                let id = j
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("line {lineno}: span_close without \"id\""))?;
                if !open.remove(&id) {
                    return Err(format!(
                        "line {lineno}: span {id} closed without being open"
                    ));
                }
                stats.spans_closed += 1;
            }
            "metric" => {
                require_str(&j, "name", ev, lineno)?;
                match require_str(&j, "kind", ev, lineno)? {
                    "counter" => {
                        require_u64(&j, "value", ev, lineno)?;
                    }
                    "gauge" => {
                        require_num(&j, "value", ev, lineno)?;
                    }
                    "histogram" => {
                        require_u64(&j, "count", ev, lineno)?;
                        require_num(&j, "sum", ev, lineno)?;
                    }
                    other => return Err(format!("line {lineno}: unknown metric kind '{other}'")),
                }
            }
            "metric_bucket" => {
                require_str(&j, "name", ev, lineno)?;
                require_str(&j, "le", ev, lineno)?;
                require_u64(&j, "count", ev, lineno)?;
            }
            "profile" => {
                require_str(&j, "phase", ev, lineno)?;
                require_num(&j, "seconds", ev, lineno)?;
                require_u64(&j, "count", ev, lineno)?;
            }
            "profile_pool" => {
                for key in ["workers", "sweeps", "jobs"] {
                    require_u64(&j, key, ev, lineno)?;
                }
                for key in ["occupancy", "chunk_imbalance"] {
                    require_num(&j, key, ev, lineno)?;
                }
            }
            "drift" => {
                require_str(&j, "stencil", ev, lineno)?;
                for key in ["predicted_mlups", "measured_mlups", "drift"] {
                    require_num(&j, key, ev, lineno)?;
                }
            }
            "drift_summary" => {
                require_str(&j, "stencil", ev, lineno)?;
                require_u64(&j, "count", ev, lineno)?;
                for key in ["p50", "p95", "p99"] {
                    require_num(&j, key, ev, lineno)?;
                }
            }
            _ => {}
        }
    }
    if !open.is_empty() {
        let mut ids: Vec<u64> = open.into_iter().collect();
        ids.sort_unstable();
        return Err(format!("unbalanced trace: spans {ids:?} never closed"));
    }
    Ok(stats)
}

fn require_str<'a>(j: &'a Json, key: &str, ev: &str, lineno: usize) -> Result<&'a str, String> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("line {lineno}: {ev} without \"{key}\""))
}

fn require_u64(j: &Json, key: &str, ev: &str, lineno: usize) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {lineno}: {ev} without \"{key}\""))
}

/// A numeric field; JSON `null` is accepted because `write_f64` encodes
/// non-finite observations that way.
fn require_num(j: &Json, key: &str, ev: &str, lineno: usize) -> Result<(), String> {
    match j.get(key) {
        Some(Json::Num(_) | Json::Null) => Ok(()),
        _ => Err(format!("line {lineno}: {ev} without \"{key}\"")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_balanced_stream() {
        let trace = concat!(
            "{\"v\":1,\"ev\":\"span_open\",\"t_us\":0,\"id\":1,\"parent\":0,\"name\":\"s\"}\n",
            "{\"v\":1,\"ev\":\"sample\",\"t_us\":5,\"span\":1,\"level\":\"debug\",\"seconds\":0.001}\n",
            "\n",
            "{\"v\":1,\"ev\":\"span_close\",\"t_us\":9,\"id\":1,\"dur_us\":9,\"name\":\"s\"}\n",
        );
        let stats = check_trace(trace).unwrap();
        assert_eq!(
            stats,
            TraceStats {
                events: 3,
                spans_opened: 1,
                spans_closed: 1
            }
        );
    }

    #[test]
    fn rejects_unbalanced_and_malformed_streams() {
        let unclosed =
            "{\"v\":1,\"ev\":\"span_open\",\"t_us\":0,\"id\":7,\"parent\":0,\"name\":\"s\"}";
        assert!(check_trace(unclosed).unwrap_err().contains("never closed"));

        let unopened =
            "{\"v\":1,\"ev\":\"span_close\",\"t_us\":0,\"id\":7,\"dur_us\":0,\"name\":\"s\"}";
        assert!(check_trace(unopened)
            .unwrap_err()
            .contains("without being open"));

        assert!(check_trace("not json").unwrap_err().contains("line 1"));
        assert!(check_trace("{\"ev\":\"x\",\"t_us\":0}")
            .unwrap_err()
            .contains("missing \"v\""));
        assert!(check_trace("{\"v\":1,\"t_us\":0}")
            .unwrap_err()
            .contains("missing \"ev\""));
        assert!(check_trace("{\"v\":1,\"ev\":\"x\"}")
            .unwrap_err()
            .contains("missing \"t_us\""));
        assert!(check_trace("{\"v\":99,\"ev\":\"x\",\"t_us\":0}")
            .unwrap_err()
            .contains("schema version 99"));
    }

    #[test]
    fn rejects_double_open() {
        let trace = concat!(
            "{\"v\":1,\"ev\":\"span_open\",\"t_us\":0,\"id\":1,\"parent\":0,\"name\":\"a\"}\n",
            "{\"v\":1,\"ev\":\"span_open\",\"t_us\":1,\"id\":1,\"parent\":0,\"name\":\"b\"}\n",
        );
        assert!(check_trace(trace).unwrap_err().contains("opened twice"));
    }

    #[test]
    fn empty_stream_is_valid() {
        assert_eq!(check_trace("").unwrap(), TraceStats::default());
    }

    #[test]
    fn validates_metric_and_bucket_events() {
        let good = concat!(
            "{\"v\":1,\"ev\":\"metric\",\"t_us\":1,\"kind\":\"counter\",\"name\":\"n\",\"value\":3}\n",
            "{\"v\":1,\"ev\":\"metric\",\"t_us\":1,\"kind\":\"gauge\",\"name\":\"g\",\"value\":0.5}\n",
            "{\"v\":1,\"ev\":\"metric\",\"t_us\":1,\"kind\":\"histogram\",\"name\":\"h\",\"count\":2,\"sum\":0.1,\"min\":0.01,\"max\":0.09}\n",
            "{\"v\":1,\"ev\":\"metric_bucket\",\"t_us\":1,\"name\":\"h\",\"le\":\"0.001\",\"count\":1}\n",
            "{\"v\":1,\"ev\":\"metric_bucket\",\"t_us\":1,\"name\":\"h\",\"le\":\"+Inf\",\"count\":2}\n",
        );
        assert_eq!(check_trace(good).unwrap().events, 5);

        let missing_kind = "{\"v\":1,\"ev\":\"metric\",\"t_us\":1,\"name\":\"n\"}";
        assert!(check_trace(missing_kind)
            .unwrap_err()
            .contains("without \"kind\""));
        let bad_kind = "{\"v\":1,\"ev\":\"metric\",\"t_us\":1,\"kind\":\"exotic\",\"name\":\"n\"}";
        assert!(check_trace(bad_kind)
            .unwrap_err()
            .contains("unknown metric kind"));
        let bucket_no_le =
            "{\"v\":1,\"ev\":\"metric_bucket\",\"t_us\":1,\"name\":\"h\",\"count\":2}";
        assert!(check_trace(bucket_no_le)
            .unwrap_err()
            .contains("without \"le\""));
    }

    #[test]
    fn validates_profiler_and_drift_events() {
        let good = concat!(
            "{\"v\":1,\"ev\":\"profile\",\"t_us\":1,\"span\":0,\"level\":\"info\",\"phase\":\"sweep\",\"seconds\":0.01,\"count\":4}\n",
            "{\"v\":1,\"ev\":\"profile_pool\",\"t_us\":2,\"workers\":4,\"sweeps\":2,\"jobs\":8,\"occupancy\":1.0,\"chunk_imbalance\":0.1}\n",
            "{\"v\":1,\"ev\":\"drift\",\"t_us\":3,\"stencil\":\"heat3d\",\"predicted_mlups\":100.0,\"measured_mlups\":90.0,\"drift\":-0.1}\n",
            "{\"v\":1,\"ev\":\"drift_summary\",\"t_us\":4,\"stencil\":\"heat3d\",\"count\":3,\"p50\":0.1,\"p95\":0.2,\"p99\":0.3,\"suspects\":0}\n",
        );
        assert_eq!(check_trace(good).unwrap().events, 4);

        let profile_no_phase =
            "{\"v\":1,\"ev\":\"profile\",\"t_us\":1,\"seconds\":0.01,\"count\":1}";
        assert!(check_trace(profile_no_phase)
            .unwrap_err()
            .contains("without \"phase\""));
        let pool_no_workers =
            "{\"v\":1,\"ev\":\"profile_pool\",\"t_us\":1,\"sweeps\":1,\"jobs\":1,\"occupancy\":1.0,\"chunk_imbalance\":0.0}";
        assert!(check_trace(pool_no_workers)
            .unwrap_err()
            .contains("without \"workers\""));
        let drift_no_stencil = "{\"v\":1,\"ev\":\"drift\",\"t_us\":1,\"predicted_mlups\":1.0,\"measured_mlups\":1.0,\"drift\":0.0}";
        assert!(check_trace(drift_no_stencil)
            .unwrap_err()
            .contains("without \"stencil\""));
    }
}
