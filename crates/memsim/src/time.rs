//! Conversion of simulated traffic counts into wall time.

use yasksite_arch::Machine;

use crate::hierarchy::HierarchyStats;

/// Per-core work description supplied by the execution engine: the cycles
/// the core spends executing instructions (the in-core "T_OL/T_nOL" part),
/// independent of where the data lives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreWork {
    /// In-core execution cycles for this core's share of the work.
    pub incore_cycles: f64,
}

/// The composed runtime estimate for one simulated kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeBreakdown {
    /// Slowest core's serialised cycles: in-core + private-cache transfers
    /// + its share of memory traffic at single-core bandwidth.
    pub max_core_cycles: f64,
    /// Socket-level memory-bandwidth bound: total memory lines at saturated
    /// bandwidth.
    pub mem_saturated_cycles: f64,
    /// Final estimate: `max(max_core_cycles, mem_saturated_cycles)`.
    pub total_cycles: f64,
    /// `total_cycles` converted to seconds at the machine clock.
    pub seconds: f64,
    /// Per-core serialised cycles (diagnostics).
    pub core_cycles: Vec<f64>,
}

impl TimeBreakdown {
    /// Whether the estimate is memory-bandwidth bound.
    #[must_use]
    pub fn saturated(&self) -> bool {
        self.mem_saturated_cycles >= self.max_core_cycles
    }
}

/// Composes simulated traffic into a runtime estimate using the same
/// serialisation rule as the Intel-style ECM model: per core, in-core
/// cycles and all data-transfer cycles add up; across cores, the socket
/// memory interface imposes a bandwidth ceiling.
///
/// `work[c]` is core `c`'s in-core cycle count; `stats` the traffic
/// snapshot of the simulated run.
///
/// # Panics
/// Panics if `work.len()` differs from the number of cores in `stats`.
#[must_use]
pub fn compose_time(machine: &Machine, stats: &HierarchyStats, work: &[CoreWork]) -> TimeBreakdown {
    let ncores = stats.boundary_lines[0].len();
    assert_eq!(work.len(), ncores, "one CoreWork per simulated core");
    let nlev = machine.caches.len();

    let mut core_cycles = Vec::with_capacity(ncores);
    for (c, w) in work.iter().enumerate() {
        let mut cy = w.incore_cycles;
        // Private boundaries: L1<->L2, ..., up to the boundary *into* the
        // last level cache; charged at the lower level's per-line cost.
        for b in 0..nlev - 1 {
            cy += stats.boundary_lines[b][c] as f64 * machine.cycles_per_line(b + 1);
        }
        // This core's memory traffic at single-core bandwidth.
        cy += stats.boundary_lines[nlev - 1][c] as f64 * machine.mem_cycles_per_line();
        core_cycles.push(cy);
    }
    let max_core_cycles = core_cycles.iter().copied().fold(0.0f64, f64::max);
    let mem_lines = (stats.mem_read_lines + stats.mem_write_lines) as f64;
    let mem_saturated_cycles = mem_lines * machine.mem_cycles_per_line_saturated();
    let total_cycles = max_core_cycles.max(mem_saturated_cycles);
    TimeBreakdown {
        max_core_cycles,
        mem_saturated_cycles,
        total_cycles,
        seconds: total_cycles / (machine.freq_ghz * 1e9),
        core_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemHierarchy;

    #[test]
    fn single_core_stream_is_core_bound_by_single_core_bw() {
        let m = Machine::cascade_lake();
        let mut h = MemHierarchy::new(&m, 1);
        let n = 10_000u64;
        for i in 0..n {
            h.read(0, i * 64);
        }
        let t = compose_time(&m, &h.stats(), &[CoreWork { incore_cycles: 0.0 }]);
        // One core cannot saturate the socket: single-core term dominates.
        assert!(!t.saturated());
        // Every line crosses memory once at ~11.4 cy plus L2/L3 transfers.
        assert!(t.total_cycles > n as f64 * m.mem_cycles_per_line());
    }

    #[test]
    fn many_cores_hit_the_bandwidth_ceiling() {
        let m = Machine::cascade_lake();
        let ncores = 20;
        let mut h = MemHierarchy::new(&m, ncores);
        let n = 2_000u64;
        for c in 0..ncores {
            for i in 0..n {
                h.read(c, (c as u64 * n + i) * 64 + 0x4000_0000);
            }
        }
        let work = vec![CoreWork { incore_cycles: 0.0 }; ncores];
        let t = compose_time(&m, &h.stats(), &work);
        assert!(t.saturated(), "20 streaming cores must saturate memory");
        let expected = (ncores as u64 * n) as f64 * m.mem_cycles_per_line_saturated();
        assert!((t.mem_saturated_cycles - expected).abs() < 1.0);
    }

    #[test]
    fn incore_cycles_add_to_the_critical_core() {
        let m = Machine::cascade_lake();
        let mut h = MemHierarchy::new(&m, 2);
        h.read(0, 0x0);
        h.read(1, 0x4000_0000);
        let t = compose_time(
            &m,
            &h.stats(),
            &[
                CoreWork {
                    incore_cycles: 1000.0,
                },
                CoreWork {
                    incore_cycles: 10.0,
                },
            ],
        );
        assert!(t.core_cycles[0] > t.core_cycles[1]);
        assert!(t.max_core_cycles >= 1000.0);
    }

    #[test]
    #[should_panic(expected = "one CoreWork per simulated core")]
    fn work_arity_checked() {
        let m = Machine::cascade_lake();
        let h = MemHierarchy::new(&m, 2);
        let _ = compose_time(&m, &h.stats(), &[CoreWork { incore_cycles: 0.0 }]);
    }
}
