//! Multi-level, multi-core hierarchy orchestration.

use yasksite_arch::{InclusionPolicy, Machine};

use crate::cache::{CacheSim, Evicted};

/// Aggregated hit/miss/writeback counts of one hierarchy level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Lookups that hit this level.
    pub hits: u64,
    /// Lookups that missed this level.
    pub misses: u64,
    /// Lines this level pushed downward on eviction (writebacks and victim
    /// inserts).
    pub down_lines: u64,
}

/// Snapshot of all traffic counters of a [`MemHierarchy`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HierarchyStats {
    /// Per-level aggregate counts, index 0 = L1.
    pub level: Vec<LevelStats>,
    /// Lines crossing boundary `b` (between level `b` and level `b+1`;
    /// the last boundary is last-level-cache ↔ memory), per core, both
    /// directions summed.
    pub boundary_lines: Vec<Vec<u64>>,
    /// Total lines read from memory.
    pub mem_read_lines: u64,
    /// Total (dirty) lines written back to memory.
    pub mem_write_lines: u64,
    /// Total accesses issued.
    pub accesses: u64,
}

impl HierarchyStats {
    /// Total bytes moved across the memory interface.
    #[must_use]
    pub fn mem_bytes(&self, line_bytes: usize) -> f64 {
        (self.mem_read_lines + self.mem_write_lines) as f64 * line_bytes as f64
    }

    /// Lines crossing boundary `b` summed over cores.
    #[must_use]
    pub fn boundary_total(&self, b: usize) -> u64 {
        self.boundary_lines[b].iter().sum()
    }
}

/// A full machine's cache hierarchy for `ncores` active cores of one socket.
#[derive(Debug)]
pub struct MemHierarchy {
    machine: Machine,
    ncores: usize,
    /// `levels[l][instance]`.
    levels: Vec<Vec<CacheSim>>,
    /// `sharers[l]` = cores per instance at level `l`.
    sharers: Vec<usize>,
    victim: Vec<bool>,
    line_bits: u32,
    /// `boundary_lines[b][core]`.
    boundary_lines: Vec<Vec<u64>>,
    level_down: Vec<u64>,
    mem_read_lines: u64,
    mem_write_lines: u64,
    accesses: u64,
}

impl MemHierarchy {
    /// Builds the hierarchy of `machine` with `ncores` cores active.
    ///
    /// # Panics
    /// Panics if `ncores` is zero, exceeds the socket, or the machine model
    /// is invalid.
    #[must_use]
    pub fn new(machine: &Machine, ncores: usize) -> Self {
        machine.validate().expect("invalid machine model");
        assert!(
            ncores >= 1 && ncores <= machine.cores_per_socket,
            "bad core count"
        );
        let nlev = machine.caches.len();
        let mut levels = Vec::with_capacity(nlev);
        let mut sharers = Vec::with_capacity(nlev);
        let mut victim = Vec::with_capacity(nlev);
        for c in &machine.caches {
            let share = c
                .scope
                .sharers(machine.cores_per_socket)
                .min(machine.cores_per_socket);
            let ninst = ncores.div_ceil(share);
            levels.push((0..ninst).map(|_| CacheSim::new(c)).collect());
            sharers.push(share);
            victim.push(matches!(c.inclusion, InclusionPolicy::Victim));
        }
        let line_bits = machine.line_bytes().trailing_zeros();
        MemHierarchy {
            machine: machine.clone(),
            ncores,
            levels,
            sharers,
            victim,
            line_bits,
            boundary_lines: vec![vec![0; ncores]; nlev],
            level_down: vec![0; nlev],
            mem_read_lines: 0,
            mem_write_lines: 0,
            accesses: 0,
        }
    }

    /// Number of active cores.
    #[must_use]
    pub fn ncores(&self) -> usize {
        self.ncores
    }

    /// The machine model this hierarchy was built from.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    #[inline]
    fn inst(&self, level: usize, core: usize) -> usize {
        core / self.sharers[level]
    }

    /// Issues a read of byte address `addr` from `core`.
    #[inline]
    pub fn read(&mut self, core: usize, addr: u64) {
        self.access(core, addr, false);
    }

    /// Issues a write (write-allocate) of byte address `addr` from `core`.
    #[inline]
    pub fn write(&mut self, core: usize, addr: u64) {
        self.access(core, addr, true);
    }

    /// Issues a non-temporal (streaming) store: the line goes straight to
    /// memory without an allocate read, and any cached copy is dropped
    /// (matching x86 MOVNT semantics). Counted once per line on the
    /// memory interface and on every boundary it bypasses.
    ///
    /// # Panics
    /// Panics if `core >= ncores`.
    pub fn write_nt(&mut self, core: usize, addr: u64) {
        assert!(core < self.ncores, "core {core} out of range");
        let line = addr >> self.line_bits;
        self.accesses += 1;
        let nlev = self.levels.len();
        for lev in 0..nlev {
            let inst = self.inst(lev, core);
            self.levels[lev][inst].invalidate_line(line);
            self.boundary_lines[lev][core] += 1;
        }
        self.mem_write_lines += 1;
    }

    /// Issues an access; `write` marks the L1 copy dirty.
    ///
    /// # Panics
    /// Panics if `core >= ncores`.
    pub fn access(&mut self, core: usize, addr: u64, write: bool) {
        assert!(core < self.ncores, "core {core} out of range");
        let line = addr >> self.line_bits;
        self.accesses += 1;
        let nlev = self.levels.len();

        // Search downward for the line.
        let mut hit_level = nlev; // nlev == memory
        let mut promoted_dirty = false;
        for lev in 0..nlev {
            let inst = self.inst(lev, core);
            if self.levels[lev][inst].access_line(line, write && lev == 0) {
                if lev > 0 && self.victim[lev] {
                    // Victim hit: the line leaves this level, carrying its
                    // dirty state upward.
                    promoted_dirty = self.levels[lev][inst]
                        .invalidate_line(line)
                        .unwrap_or(false);
                }
                hit_level = lev;
                break;
            }
        }
        if hit_level == nlev {
            self.mem_read_lines += 1;
        }
        // Count upward crossings: boundary b is crossed if the hit was
        // below it.
        for b in 0..nlev {
            if hit_level > b {
                self.boundary_lines[b][core] += 1;
            }
        }

        // Fill the levels above the hit, skipping victim levels (they are
        // only populated by evictions from above).
        for lev in (0..hit_level).rev() {
            if lev > 0 && self.victim[lev] {
                continue;
            }
            let dirty = lev == 0 && (write || promoted_dirty);
            // A dirty promotion into an L1 fill that is *not* the top could
            // lose the dirty bit; since fills always include L1 this cannot
            // happen, but keep the invariant explicit:
            debug_assert!(lev == 0 || !promoted_dirty || hit_level > 0);
            let inst = self.inst(lev, core);
            let ev = self.levels[lev][inst].insert_line(line, dirty);
            self.handle_eviction(core, lev, ev);
        }
    }

    /// Routes an eviction from `level` to the level below.
    fn handle_eviction(&mut self, core: usize, level: usize, ev: Evicted) {
        let (line, dirty) = match ev {
            Evicted::None => return,
            Evicted::Clean(l) => (l, false),
            Evicted::Dirty(l) => (l, true),
        };
        let nlev = self.levels.len();
        let below = level + 1;
        if below >= nlev {
            // Last-level eviction.
            if dirty {
                self.level_down[level] += 1;
                self.boundary_lines[level][core] += 1;
                self.mem_write_lines += 1;
            }
            return;
        }
        let inst = self.inst(below, core);
        if self.victim[below] {
            // Victim level absorbs every eviction from above.
            self.level_down[level] += 1;
            self.boundary_lines[level][core] += 1;
            let ev2 = self.levels[below][inst].insert_line(line, dirty);
            self.handle_eviction(core, below, ev2);
        } else if dirty {
            // Inclusive level: the line is normally still present; update
            // it, or re-insert if it has been independently evicted.
            self.level_down[level] += 1;
            self.boundary_lines[level][core] += 1;
            if self.levels[below][inst].probe(line) {
                self.levels[below][inst].mark_dirty(line);
            } else {
                let ev2 = self.levels[below][inst].insert_line(line, dirty);
                self.handle_eviction(core, below, ev2);
            }
        }
        // Clean evictions into an inclusive level are dropped silently.
    }

    /// Snapshot of all counters.
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        let level = self
            .levels
            .iter()
            .enumerate()
            .map(|(l, insts)| LevelStats {
                hits: insts.iter().map(CacheSim::hits).sum(),
                misses: insts.iter().map(CacheSim::misses).sum(),
                down_lines: self.level_down[l],
            })
            .collect();
        HierarchyStats {
            level,
            boundary_lines: self.boundary_lines.clone(),
            mem_read_lines: self.mem_read_lines,
            mem_write_lines: self.mem_write_lines,
            accesses: self.accesses,
        }
    }

    /// Clears contents and counters (grids keep their addresses, so a
    /// cleared hierarchy models a cold start of the same problem).
    pub fn clear(&mut self) {
        for insts in &mut self.levels {
            for c in insts {
                c.clear();
            }
        }
        for b in &mut self.boundary_lines {
            b.fill(0);
        }
        self.level_down.fill(0);
        self.mem_read_lines = 0;
        self.mem_write_lines = 0;
        self.accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clx1() -> MemHierarchy {
        MemHierarchy::new(&Machine::cascade_lake(), 1)
    }

    #[test]
    fn second_access_hits_l1() {
        let mut h = clx1();
        h.read(0, 0x1000);
        h.read(0, 0x1010); // same line
        let s = h.stats();
        assert_eq!(s.level[0].hits, 1);
        assert_eq!(s.level[0].misses, 1);
        assert_eq!(s.mem_read_lines, 1);
        assert_eq!(s.boundary_total(0), 1);
    }

    #[test]
    fn streaming_misses_everywhere() {
        let mut h = clx1();
        let n = 1000u64;
        for i in 0..n {
            h.read(0, i * 64);
        }
        let s = h.stats();
        assert_eq!(s.mem_read_lines, n);
        assert_eq!(s.level[0].misses, n);
        assert_eq!(s.boundary_total(0), n);
        assert_eq!(s.boundary_total(2), n);
    }

    #[test]
    fn l2_captures_medium_working_set() {
        // 256 KiB working set: fits CLX L2 (1 MiB), not L1 (32 KiB).
        let mut h = clx1();
        let lines = 256 * 1024 / 64;
        for pass in 0..2 {
            for i in 0..lines {
                h.read(0, i as u64 * 64);
            }
            let _ = pass;
        }
        let s = h.stats();
        // Second pass: all L1 misses must hit L2; no new memory reads.
        assert_eq!(s.mem_read_lines, lines as u64);
        assert_eq!(s.level[1].hits, lines as u64);
    }

    #[test]
    fn victim_l3_catches_l2_capacity_evictions() {
        // 4 MiB working set: exceeds L2 (1 MiB), fits L3 (28 MiB).
        let mut h = clx1();
        let lines = 4 * 1024 * 1024 / 64;
        for i in 0..lines {
            h.read(0, i as u64 * 64);
        }
        let first = h.stats();
        assert_eq!(first.mem_read_lines, lines as u64);
        // L3 only gets populated by L2 evictions (victim), never by fills.
        assert!(first.level[2].hits == 0);
        for i in 0..lines {
            h.read(0, i as u64 * 64);
        }
        let s = h.stats();
        // Second pass must be served from L3, not memory.
        assert_eq!(s.mem_read_lines, lines as u64, "no extra memory reads");
        assert!(s.level[2].hits > 0);
    }

    #[test]
    fn dirty_lines_are_written_back_to_memory() {
        let mut h = clx1();
        // Write a >L3 stream so dirty lines cascade all the way out.
        let lines = 40 * 1024 * 1024 / 64; // 40 MiB > 28 MiB L3
        for i in 0..lines {
            h.write(0, i as u64 * 64);
        }
        // Flush by streaming a second, disjoint region.
        for i in 0..lines {
            h.read(0, (lines + i) as u64 * 64);
        }
        let s = h.stats();
        assert!(
            s.mem_write_lines > (lines / 2) as u64,
            "most dirty lines must reach memory: {} of {}",
            s.mem_write_lines,
            lines
        );
    }

    #[test]
    fn per_core_private_caches_are_independent() {
        let mut h = MemHierarchy::new(&Machine::cascade_lake(), 2);
        h.read(0, 0x5000);
        h.read(1, 0x5000); // other core: own L1/L2 miss, shared L3 victim...
        let s = h.stats();
        // Both cores miss their private L1.
        assert_eq!(s.level[0].misses, 2);
        assert_eq!(s.boundary_lines[0][0], 1);
        assert_eq!(s.boundary_lines[0][1], 1);
    }

    #[test]
    fn rome_ccx_grouping() {
        let m = Machine::rome();
        let h = MemHierarchy::new(&m, 8);
        // 8 cores -> 2 CCX L3 instances.
        assert_eq!(h.levels[2].len(), 2);
        assert_eq!(h.inst(2, 3), 0);
        assert_eq!(h.inst(2, 4), 1);
    }

    #[test]
    #[should_panic(expected = "core")]
    fn out_of_range_core_panics() {
        let mut h = clx1();
        h.read(1, 0);
    }

    #[test]
    fn nt_store_skips_the_allocate_read() {
        let mut h = clx1();
        for i in 0..100u64 {
            h.write_nt(0, i * 64);
        }
        let s = h.stats();
        assert_eq!(s.mem_write_lines, 100);
        assert_eq!(s.mem_read_lines, 0, "no write-allocate for NT stores");
        // The lines are not cached afterwards.
        h.read(0, 0);
        assert_eq!(h.stats().level[0].misses, 1);
    }

    #[test]
    fn nt_store_invalidates_cached_copies() {
        let mut h = clx1();
        h.write(0, 0x100); // cached + dirty
        h.write_nt(0, 0x100); // flushes and drops it
        h.read(0, 0x100);
        let s = h.stats();
        // The read after the NT store must miss all the way to memory.
        assert_eq!(s.mem_read_lines, 2);
    }

    #[test]
    fn clear_resets_everything() {
        let mut h = clx1();
        h.write(0, 0x40);
        h.clear();
        let s = h.stats();
        assert_eq!(s.accesses, 0);
        assert_eq!(s.mem_read_lines, 0);
        assert_eq!(s.level[0].hits + s.level[0].misses, 0);
    }
}
