//! A single set-associative, LRU cache.

use yasksite_arch::CacheLevel;

const INVALID: u64 = u64::MAX;

/// What fell out of a cache on an insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Evicted {
    /// The set had a free way; nothing was evicted.
    None,
    /// A clean line with the given line address was evicted.
    Clean(u64),
    /// A dirty line with the given line address was evicted (must be
    /// written to the level below).
    Dirty(u64),
}

/// One instance of a cache level: set-associative, true-LRU, tracking
/// per-line dirty bits.
///
/// Addresses are byte addresses; the cache works internally on *line*
/// addresses (`addr >> line_bits`). All operations are exposed at line
/// granularity so a hierarchy can orchestrate inclusion policies.
#[derive(Debug, Clone)]
pub struct CacheSim {
    line_bits: u32,
    sets: usize,
    assoc: usize,
    /// `sets * assoc` tags; `INVALID` marks an empty way.
    tags: Vec<u64>,
    dirty: Vec<bool>,
    /// LRU stamps, larger = more recent.
    stamp: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Builds a simulator instance from a [`CacheLevel`] descriptor.
    ///
    /// # Panics
    /// Panics if the level's geometry is invalid (callers validate the
    /// machine model first).
    #[must_use]
    pub fn new(level: &CacheLevel) -> Self {
        level.validate().expect("invalid cache level");
        let sets = level.num_sets();
        CacheSim {
            line_bits: level.line_bytes.trailing_zeros(),
            sets,
            assoc: level.assoc,
            tags: vec![INVALID; sets * level.assoc],
            dirty: vec![false; sets * level.assoc],
            stamp: vec![0; sets * level.assoc],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Converts a byte address to the line address used by this cache.
    #[inline]
    #[must_use]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_bits
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line as usize) & (self.sets - 1)
    }

    /// Looks up `line`; on a hit refreshes LRU and optionally marks dirty.
    /// Returns `true` on hit. Statistics are updated.
    pub fn access_line(&mut self, line: u64, write: bool) -> bool {
        let set = self.set_of(line);
        let base = set * self.assoc;
        self.clock += 1;
        for w in 0..self.assoc {
            if self.tags[base + w] == line {
                self.stamp[base + w] = self.clock;
                if write {
                    self.dirty[base + w] = true;
                }
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Checks for presence without touching LRU or statistics.
    #[must_use]
    pub fn probe(&self, line: u64) -> bool {
        let set = self.set_of(line);
        let base = set * self.assoc;
        (0..self.assoc).any(|w| self.tags[base + w] == line)
    }

    /// Inserts `line` (assumed absent), evicting the LRU way if the set is
    /// full. The line's dirty bit is initialised to `dirty`.
    pub fn insert_line(&mut self, line: u64, dirty: bool) -> Evicted {
        let set = self.set_of(line);
        let base = set * self.assoc;
        self.clock += 1;
        let mut victim = 0;
        let mut best = u64::MAX;
        for w in 0..self.assoc {
            if self.tags[base + w] == INVALID {
                victim = w;
                break;
            }
            if self.stamp[base + w] < best {
                best = self.stamp[base + w];
                victim = w;
            }
        }
        let slot = base + victim;
        let evicted = if self.tags[slot] == INVALID {
            Evicted::None
        } else if self.dirty[slot] {
            Evicted::Dirty(self.tags[slot])
        } else {
            Evicted::Clean(self.tags[slot])
        };
        self.tags[slot] = line;
        self.dirty[slot] = dirty;
        self.stamp[slot] = self.clock;
        evicted
    }

    /// Removes `line` if present, returning whether it was there and dirty.
    /// Used for victim-cache promotion (a line moving up leaves the victim
    /// level).
    pub fn invalidate_line(&mut self, line: u64) -> Option<bool> {
        let set = self.set_of(line);
        let base = set * self.assoc;
        for w in 0..self.assoc {
            if self.tags[base + w] == line {
                self.tags[base + w] = INVALID;
                let d = self.dirty[base + w];
                self.dirty[base + w] = false;
                return Some(d);
            }
        }
        None
    }

    /// Marks an already-present line dirty (no LRU update); no-op if absent.
    pub fn mark_dirty(&mut self, line: u64) {
        let set = self.set_of(line);
        let base = set * self.assoc;
        for w in 0..self.assoc {
            if self.tags[base + w] == line {
                self.dirty[base + w] = true;
                return;
            }
        }
    }

    /// Hit count so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of lines currently resident.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID).count()
    }

    /// Resets contents and statistics.
    pub fn clear(&mut self) {
        self.tags.fill(INVALID);
        self.dirty.fill(false);
        self.stamp.fill(0);
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_arch::{InclusionPolicy, Scope, WritePolicy};

    fn tiny(assoc: usize, sets: usize) -> CacheSim {
        CacheSim::new(&CacheLevel {
            name: "T".into(),
            size_bytes: sets * assoc * 64,
            assoc,
            line_bytes: 64,
            bytes_per_cycle: 64.0,
            latency_cycles: 1.0,
            inclusion: InclusionPolicy::Inclusive,
            write_policy: WritePolicy::WriteBackAllocate,
            scope: Scope::PerCore,
        })
    }

    #[test]
    fn hit_after_insert() {
        let mut c = tiny(2, 2);
        let line = c.line_of(0x80);
        assert!(!c.access_line(line, false));
        c.insert_line(line, false);
        assert!(c.access_line(line, false));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2, 1); // one set, two ways
        c.insert_line(1, false);
        c.insert_line(2, false);
        // Touch line 1 so line 2 becomes LRU.
        assert!(c.access_line(1, false));
        match c.insert_line(3, false) {
            Evicted::Clean(l) => assert_eq!(l, 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(c.probe(1));
        assert!(c.probe(3));
        assert!(!c.probe(2));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny(1, 1);
        c.insert_line(7, true);
        assert_eq!(c.insert_line(8, false), Evicted::Dirty(7));
        assert_eq!(c.insert_line(9, false), Evicted::Clean(8));
    }

    #[test]
    fn write_hit_sets_dirty() {
        let mut c = tiny(1, 1);
        c.insert_line(5, false);
        assert!(c.access_line(5, true));
        assert_eq!(c.insert_line(6, false), Evicted::Dirty(5));
    }

    #[test]
    fn invalidate_returns_dirtiness() {
        let mut c = tiny(2, 1);
        c.insert_line(1, true);
        c.insert_line(2, false);
        assert_eq!(c.invalidate_line(1), Some(true));
        assert_eq!(c.invalidate_line(1), None);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny(1, 4);
        for line in 0..4u64 {
            c.insert_line(line, false);
        }
        assert_eq!(c.resident_lines(), 4);
        for line in 0..4u64 {
            assert!(c.probe(line));
        }
    }

    #[test]
    fn capacity_miss_on_working_set_overflow() {
        let mut c = tiny(4, 4); // 16 lines capacity
                                // Stream 32 distinct lines twice: second pass must still miss.
        for pass in 0..2 {
            for line in 0..32u64 {
                if !c.access_line(line, false) {
                    c.insert_line(line, false);
                }
            }
            let _ = pass;
        }
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 64);
    }

    #[test]
    fn small_working_set_all_hits_second_pass() {
        let mut c = tiny(4, 4);
        for line in 0..8u64 {
            c.insert_line(line, false);
        }
        for line in 0..8u64 {
            assert!(c.access_line(line, false));
        }
    }
}
