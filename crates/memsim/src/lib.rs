//! Execution-driven memory-hierarchy simulator.
//!
//! The paper evaluates on 20-core Cascade Lake and 64-core Rome sockets;
//! this reproduction has neither, so "measured" performance comes from
//! simulating the kernels' memory behaviour against the same hierarchy
//! parameters. The simulator models set-associative, LRU, write-back /
//! write-allocate caches with per-core private L1/L2 and shared (or
//! CCX-grouped) L3, including Skylake-style *victim* L3 semantics, and
//! counts the line traffic crossing every level boundary.
//!
//! Counted traffic is converted to wall time by [`compose_time`], which
//! charges each boundary with the machine's per-line transfer cost and the
//! memory interface with both the per-core and the saturated socket
//! bandwidth — the same decomposition the ECM model uses analytically, but
//! fed with *observed* line counts instead of layer-condition predictions.
//! Comparing the two is exactly the model-validation experiment of the
//! paper.
//!
//! # Examples
//!
//! ```
//! use yasksite_arch::Machine;
//! use yasksite_memsim::MemHierarchy;
//!
//! let mut h = MemHierarchy::new(&Machine::cascade_lake(), 1);
//! h.read(0, 0x1000);
//! h.read(0, 0x1008);            // same 64-byte line: L1 hit
//! let s = h.stats();
//! assert_eq!(s.level[0].hits, 1);
//! assert_eq!(s.level[0].misses, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hierarchy;
mod time;

pub use cache::{CacheSim, Evicted};
pub use hierarchy::{HierarchyStats, LevelStats, MemHierarchy};
pub use time::{compose_time, CoreWork, TimeBreakdown};
