//! Expression trees over grid accesses.

use std::fmt;
use std::ops;

/// Index of an input grid within a stencil's input list.
pub type GridId = usize;

/// A scalar-valued expression over constant coefficients and grid accesses
/// at constant offsets from the update point.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal coefficient.
    Const(f64),
    /// Input grid `grid` at offset `(dx, dy, dz)` from the point being
    /// updated.
    At {
        /// Which input grid is read.
        grid: GridId,
        /// Offset along x.
        dx: i32,
        /// Offset along y.
        dy: i32,
        /// Offset along z.
        dz: i32,
    },
    /// Sum of two subexpressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two subexpressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Product of two subexpressions.
    Mul(Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
}

/// Shorthand for a grid access: `at(g, dx, dy, dz)`.
#[must_use]
pub fn at(grid: GridId, dx: i32, dy: i32, dz: i32) -> Expr {
    Expr::At { grid, dx, dy, dz }
}

/// Shorthand for a constant coefficient.
#[must_use]
pub fn c(v: f64) -> Expr {
    Expr::Const(v)
}

impl Expr {
    /// Walks the tree, calling `f` on every node (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Const(_) | Expr::At { .. } => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Neg(a) => a.visit(f),
        }
    }

    /// Number of nodes in the tree.
    #[must_use]
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Sums `terms` into a balanced tree (shorter dependency chains than a
    /// left fold; matters for the in-core model's critical-path estimate
    /// and mirrors what YASK's codegen emits).
    ///
    /// # Panics
    /// Panics if `terms` is empty.
    #[must_use]
    pub fn sum(mut terms: Vec<Expr>) -> Expr {
        assert!(!terms.is_empty(), "Expr::sum of no terms");
        while terms.len() > 1 {
            let mut next = Vec::with_capacity(terms.len().div_ceil(2));
            let mut it = terms.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(a + b),
                    None => next.push(a),
                }
            }
            terms = next;
        }
        terms.pop().expect("non-empty by construction")
    }
}

impl ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
}

impl ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::At { grid, dx, dy, dz } => write!(f, "g{grid}({dx:+},{dy:+},{dz:+})"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operators_build_expected_tree() {
        let e = c(2.0) * at(0, 1, 0, 0) + (-c(1.0));
        assert_eq!(e.node_count(), 6);
        assert_eq!(e.to_string(), "((2 * g0(+1,+0,+0)) + (-1))");
    }

    #[test]
    fn sum_balances() {
        let e = Expr::sum((0..4).map(|i| c(f64::from(i))).collect());
        // ((0+1) + (2+3)) — depth 2, not 3.
        assert_eq!(e.to_string(), "((0 + 1) + (2 + 3))");
    }

    #[test]
    fn sum_single() {
        assert_eq!(Expr::sum(vec![c(5.0)]), c(5.0));
    }

    #[test]
    #[should_panic(expected = "no terms")]
    fn sum_empty_panics() {
        let _ = Expr::sum(vec![]);
    }

    #[test]
    fn visit_reaches_all_nodes() {
        let e = c(1.0) - at(0, 0, 0, 0) * at(1, 0, 0, 0);
        let mut consts = 0;
        let mut ats = 0;
        e.visit(&mut |n| match n {
            Expr::Const(_) => consts += 1,
            Expr::At { .. } => ats += 1,
            _ => {}
        });
        assert_eq!((consts, ats), (1, 2));
    }
}
