//! Ready-made stencils: the paper's test set and the ODE right-hand sides.

use crate::expr::{at, c, Expr};
use crate::stencil::Stencil;

/// 3-D star ("long-range") stencil of radius `r`: the centre point plus the
/// six axis neighbours at each distance `1..=r`, each distance with its own
/// coefficient. `coeffs[0]` is the centre coefficient, `coeffs[d]` the
/// coefficient of distance `d`.
///
/// # Panics
/// Panics if `coeffs.len() != r + 1` or `r == 0`.
#[must_use]
pub fn star3d(r: usize, coeffs: &[f64]) -> Stencil {
    assert!(r >= 1, "star radius must be >= 1");
    assert_eq!(coeffs.len(), r + 1, "need one coefficient per distance");
    let mut terms = vec![c(coeffs[0]) * at(0, 0, 0, 0)];
    for d in 1..=r as i32 {
        let ring = Expr::sum(vec![
            at(0, -d, 0, 0),
            at(0, d, 0, 0),
            at(0, 0, -d, 0),
            at(0, 0, d, 0),
            at(0, 0, 0, -d),
            at(0, 0, 0, d),
        ]);
        terms.push(c(coeffs[d as usize]) * ring);
    }
    Stencil::new(&format!("star-3d-r{r}"), 3, 1, Expr::sum(terms))
}

/// 2-D star stencil of radius `r` (x/y neighbours only).
///
/// # Panics
/// Panics if `coeffs.len() != r + 1` or `r == 0`.
#[must_use]
pub fn star2d(r: usize, coeffs: &[f64]) -> Stencil {
    assert!(r >= 1, "star radius must be >= 1");
    assert_eq!(coeffs.len(), r + 1, "need one coefficient per distance");
    let mut terms = vec![c(coeffs[0]) * at(0, 0, 0, 0)];
    for d in 1..=r as i32 {
        let ring = Expr::sum(vec![
            at(0, -d, 0, 0),
            at(0, d, 0, 0),
            at(0, 0, -d, 0),
            at(0, 0, d, 0),
        ]);
        terms.push(c(coeffs[d as usize]) * ring);
    }
    Stencil::new(&format!("star-2d-r{r}"), 2, 1, Expr::sum(terms))
}

/// The classic 3-D heat/Jacobi stencil of radius `r`, with the diffusion
/// coefficients used throughout the paper-style experiments
/// (centre `1 - 6*r*alpha`, neighbours `alpha = 1/8`).
#[must_use]
pub fn heat3d(r: usize) -> Stencil {
    let alpha = 0.125 / r as f64;
    let mut coeffs = vec![1.0 - 6.0 * r as f64 * alpha];
    coeffs.extend(std::iter::repeat_n(alpha, r));
    let mut s = star3d(r, &coeffs);
    s = Stencil::new(&format!("heat-3d-r{r}"), 3, 1, s.expr().clone());
    s
}

/// The 2-D heat stencil of radius `r` (5-point for `r = 1`).
#[must_use]
pub fn heat2d(r: usize) -> Stencil {
    let alpha = 0.125 / r as f64;
    let mut coeffs = vec![1.0 - 4.0 * r as f64 * alpha];
    coeffs.extend(std::iter::repeat_n(alpha, r));
    let s = star2d(r, &coeffs);
    Stencil::new(&format!("heat-2d-r{r}"), 2, 1, s.expr().clone())
}

/// Dense 3-D box stencil of radius `r`: uniform average over the full
/// `(2r+1)^3` cube — the high-flop, high-reuse end of the test set.
#[must_use]
pub fn box3d(r: usize) -> Stencil {
    let r = r as i32;
    let count = (2 * r + 1).pow(3);
    let w = 1.0 / f64::from(count);
    let mut pts = Vec::with_capacity(count as usize);
    for dz in -r..=r {
        for dy in -r..=r {
            for dx in -r..=r {
                pts.push(at(0, dx, dy, dz));
            }
        }
    }
    Stencil::new(&format!("box-3d-r{r}"), 3, 1, c(w) * Expr::sum(pts))
}

/// 2-D acoustic wave update (leapfrog): needs two input time levels.
/// `out = 2*u - u_prev + c2 * laplacian(u)`; input 0 is `u^t`, input 1 is
/// `u^{t-1}`.
#[must_use]
pub fn wave2d(c2: f64) -> Stencil {
    let lap = at(0, -1, 0, 0) + at(0, 1, 0, 0) + at(0, 0, -1, 0) + at(0, 0, 1, 0)
        - c(4.0) * at(0, 0, 0, 0);
    let e = c(2.0) * at(0, 0, 0, 0) - at(1, 0, 0, 0) + c(c2) * lap;
    Stencil::new("wave-2d", 2, 2, e)
}

/// Right-hand side of the 2-D heat IVP `du/dt = Laplacian(u) / h^2` on a
/// unit square discretised with `n` interior points per dimension
/// (Dirichlet boundaries). Used by the ODE crate.
#[must_use]
pub fn heat2d_rhs(n: usize) -> Stencil {
    let h = 1.0 / (n as f64 + 1.0);
    let ih2 = 1.0 / (h * h);
    let e = c(ih2)
        * (at(0, -1, 0, 0) + at(0, 1, 0, 0) + at(0, 0, -1, 0) + at(0, 0, 1, 0)
            - c(4.0) * at(0, 0, 0, 0));
    Stencil::new("heat2d-rhs", 2, 1, e)
}

/// Right-hand side of the 3-D heat IVP (7-point Laplacian over `h = 1/(n+1)`).
#[must_use]
pub fn heat3d_rhs(n: usize) -> Stencil {
    let h = 1.0 / (n as f64 + 1.0);
    let ih2 = 1.0 / (h * h);
    let e = c(ih2)
        * (at(0, -1, 0, 0)
            + at(0, 1, 0, 0)
            + at(0, 0, -1, 0)
            + at(0, 0, 1, 0)
            + at(0, 0, 0, -1)
            + at(0, 0, 0, 1)
            - c(6.0) * at(0, 0, 0, 0));
    Stencil::new("heat3d-rhs", 3, 1, e)
}

/// Right-hand side of the 2-D wave IVP written as a first-order system is
/// handled in the ODE crate; this is the plain Laplacian used there.
#[must_use]
pub fn laplacian2d(n: usize) -> Stencil {
    let h = 1.0 / (n as f64 + 1.0);
    let ih2 = 1.0 / (h * h);
    let e = c(ih2)
        * (at(0, -1, 0, 0) + at(0, 1, 0, 0) + at(0, 0, -1, 0) + at(0, 0, 1, 0)
            - c(4.0) * at(0, 0, 0, 0));
    Stencil::new("laplacian-2d", 2, 1, e)
}

/// Right-hand side of the "inverter chain" IVP: a 1-D chain of CMOS
/// inverters where stage `i` is driven by stage `i-1`,
/// `du_i/dt = k1*(u_op - u_i) - k2 * u_{i-1}^2 * u_i`.
///
/// The original Offsite suite uses a device-level nonlinearity; this cubic
/// surrogate preserves the structural properties that matter for tuning:
/// a one-sided radius-1 access pattern and a multiplication-heavy,
/// low-stream kernel.
#[must_use]
pub fn inverter_chain_rhs(u_op: f64, k1: f64, k2: f64) -> Stencil {
    let drive = at(0, -1, 0, 0) * at(0, -1, 0, 0) * at(0, 0, 0, 0);
    let e = c(k1) * (c(u_op) - at(0, 0, 0, 0)) - c(k2) * drive;
    Stencil::new("inverter-chain-rhs", 1, 1, e)
}

/// Variable-coefficient 3-D heat stencil: the diffusion coefficient is a
/// *grid* (input 1) rather than a constant — YASK's "grid parameter"
/// feature, common in geophysics kernels where material properties vary
/// per cell:
///
/// `out = u + kappa(x) · (Σ_axis neighbours − 6·u)`
///
/// Doubles the read streams and adds a multiply per update, moving the
/// kernel's balance point — a useful test of the model's multi-stream
/// traffic accounting.
#[must_use]
pub fn heat3d_varcoeff() -> Stencil {
    let u = at(0, 0, 0, 0);
    let lap = at(0, -1, 0, 0)
        + at(0, 1, 0, 0)
        + at(0, 0, -1, 0)
        + at(0, 0, 1, 0)
        + at(0, 0, 0, -1)
        + at(0, 0, 0, 1)
        - c(6.0) * u.clone();
    let kappa = at(1, 0, 0, 0);
    Stencil::new("heat-3d-vc", 3, 2, u + kappa * lap)
}

/// Variable-coefficient 2-D heat stencil (see [`heat3d_varcoeff`]).
#[must_use]
pub fn heat2d_varcoeff() -> Stencil {
    let u = at(0, 0, 0, 0);
    let lap =
        at(0, -1, 0, 0) + at(0, 1, 0, 0) + at(0, 0, -1, 0) + at(0, 0, 1, 0) - c(4.0) * u.clone();
    let kappa = at(1, 0, 0, 0);
    Stencil::new("heat-2d-vc", 2, 2, u + kappa * lap)
}

/// The stencil test set used by the E1 table and the single-stencil
/// experiments: short- and long-range stars, a dense box, 2-D kernels and
/// the two-time-level wave kernel.
#[must_use]
pub fn paper_suite() -> Vec<Stencil> {
    vec![
        heat3d(1),
        star3d(2, &[0.5, 0.1, 0.05]),
        star3d(3, &[0.5, 0.1, 0.05, 0.025]),
        star3d(4, &[0.5, 0.1, 0.05, 0.025, 0.0125]),
        box3d(1),
        heat2d(1),
        star2d(2, &[0.6, 0.15, 0.05]),
        wave2d(0.35),
        heat3d_varcoeff(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_grid::{Fold, Grid3};

    #[test]
    fn star3d_point_counts() {
        for r in 1..=4 {
            let s = star3d(r, &vec![1.0; r + 1]);
            assert_eq!(s.info().reads_per_point, 1 + 6 * r);
            assert_eq!(s.info().radius, [r, r, r]);
        }
    }

    #[test]
    fn box3d_point_counts() {
        assert_eq!(box3d(1).info().reads_per_point, 27);
        assert_eq!(box3d(2).info().reads_per_point, 125);
    }

    #[test]
    fn heat3d_conserves_constant_field() {
        // Coefficients sum to 1, so a constant field is a fixed point.
        let s = heat3d(1);
        let mut u = Grid3::new("u", [6, 6, 6], [1, 1, 1], Fold::unit());
        u.fill_all(3.0);
        let mut out = Grid3::new("o", [6, 6, 6], [0, 0, 0], Fold::unit());
        s.apply_reference(&[&u], &mut out).unwrap();
        assert!((out.get(3, 3, 3) - 3.0).abs() < 1e-14);
    }

    #[test]
    fn heat2d_is_2d() {
        let s = heat2d(1);
        assert_eq!(s.info().radius, [1, 1, 0]);
        assert_eq!(s.info().reads_per_point, 5);
    }

    #[test]
    fn wave2d_two_inputs() {
        let s = wave2d(0.3);
        assert_eq!(s.num_inputs(), 2);
        // Constant-in-time field stays constant: 2u - u + c2*0 = u.
        let mut u = Grid3::new("u", [5, 5, 1], [1, 1, 0], Fold::unit());
        let mut um = Grid3::new("um", [5, 5, 1], [1, 1, 0], Fold::unit());
        u.fill_all(2.0);
        um.fill_all(2.0);
        let mut out = Grid3::new("o", [5, 5, 1], [0, 0, 0], Fold::unit());
        s.apply_reference(&[&u, &um], &mut out).unwrap();
        assert!((out.get(2, 2, 0) - 2.0).abs() < 1e-14);
    }

    #[test]
    fn inverter_chain_is_one_sided() {
        let s = inverter_chain_rhs(5.0, 1.0, 2.0);
        let i = s.info();
        assert_eq!(i.extent(0, 0), (-1, 0));
        assert_eq!(i.radius, [1, 0, 0]);
        // u=0 everywhere: rhs = k1*u_op = 5.
        let mut u = Grid3::new("u", [4, 1, 1], [1, 0, 0], Fold::unit());
        u.fill_all(0.0);
        let mut out = Grid3::new("o", [4, 1, 1], [0, 0, 0], Fold::unit());
        s.apply_reference(&[&u], &mut out).unwrap();
        assert!((out.get(1, 0, 0) - 5.0).abs() < 1e-14);
    }

    #[test]
    fn rhs_laplacians_scale_with_h() {
        let s = heat2d_rhs(15); // h = 1/16, 1/h^2 = 256
        let mut u = Grid3::new("u", [15, 15, 1], [1, 1, 0], Fold::unit());
        u.fill_halo(0.0);
        u.set(7, 7, 0, 1.0);
        let mut out = Grid3::new("o", [15, 15, 1], [0, 0, 0], Fold::unit());
        s.apply_reference(&[&u], &mut out).unwrap();
        assert!((out.get(7, 7, 0) - (-4.0 * 256.0)).abs() < 1e-9);
        assert!((out.get(6, 7, 0) - 256.0).abs() < 1e-9);
    }

    #[test]
    fn varcoeff_heat_reads_two_grids() {
        let s = heat3d_varcoeff();
        let i = s.info();
        assert_eq!(s.num_inputs(), 2);
        assert_eq!(i.read_grids, 2);
        assert_eq!(i.reads_per_point, 8); // 7 of u + 1 of kappa
                                          // With kappa == alpha constant it must equal the fixed-coeff
                                          // stencil's behaviour on a constant field.
        let mut u = Grid3::new("u", [6, 6, 6], [1, 1, 1], Fold::unit());
        u.fill_all(2.0);
        let mut kap = Grid3::new("k", [6, 6, 6], [1, 1, 1], Fold::unit());
        kap.fill_all(0.125);
        let mut out = Grid3::new("o", [6, 6, 6], [0, 0, 0], Fold::unit());
        s.apply_reference(&[&u, &kap], &mut out).unwrap();
        assert!(
            (out.get(3, 3, 3) - 2.0).abs() < 1e-14,
            "constant field is a fixed point"
        );
    }

    #[test]
    fn varcoeff_is_nonlinear_in_inputs_jointly() {
        // kappa * u products make the expression non-affine, exercising
        // the engine's tape path.
        let s = heat2d_varcoeff();
        assert!(s.info().muls >= 2);
    }

    #[test]
    fn suite_has_unique_names() {
        let suite = paper_suite();
        let mut names: Vec<_> = suite.iter().map(Stencil::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }
}
