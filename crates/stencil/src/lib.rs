//! Stencil intermediate representation for the YaskSite reproduction.
//!
//! A [`Stencil`] is the value-level description of one grid update: an
//! expression tree ([`Expr`]) over constant coefficients and neighbouring
//! points of one or more input grids. This mirrors YASK's stencil compiler
//! input (equations over grid accesses with constant offsets), reduced to
//! the single-equation, out-of-place form that explicit ODE right-hand sides
//! need.
//!
//! The crate provides
//! - expression construction with ordinary operators ([`at`], [`c`]),
//! - ready-made builders for the paper's stencil test set
//!   ([`builders`], [`paper_suite`]),
//! - static analysis ([`StencilInfo`]): radius, access offsets, flop and
//!   load/store stream counts — the inputs of the ECM model, and
//! - a scalar reference interpreter used as ground truth by every engine
//!   test.
//!
//! # Examples
//!
//! ```
//! use yasksite_stencil::{at, c, Stencil};
//!
//! // 1-D three-point average: out(i) = 0.25*u(i-1) + 0.5*u(i) + 0.25*u(i+1)
//! let expr = c(0.25) * at(0, -1, 0, 0) + c(0.5) * at(0, 0, 0, 0) + c(0.25) * at(0, 1, 0, 0);
//! let s = Stencil::new("avg1d", 1, 1, expr);
//! let info = s.info();
//! assert_eq!(info.radius, [1, 0, 0]);
//! assert_eq!(info.reads_per_point, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
pub mod builders;
mod expr;
mod stencil;

pub use analysis::{stencil_table, StencilInfo};
pub use builders::paper_suite;
pub use expr::{at, c, Expr, GridId};
pub use stencil::{Stencil, StencilError};
