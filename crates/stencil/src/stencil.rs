//! The stencil object: a named update equation plus its reference
//! interpreter.

use std::fmt;

use yasksite_grid::Grid3;

use crate::expr::{Expr, GridId};

/// Errors reported by stencil construction and application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StencilError {
    /// The expression references a grid id not covered by `num_inputs`.
    UnknownGrid {
        /// The offending grid id.
        grid: GridId,
        /// Declared number of inputs.
        num_inputs: usize,
    },
    /// An input grid's halo is smaller than the stencil radius.
    HaloTooSmall {
        /// Input slot.
        grid: GridId,
        /// Dimension index 0..3.
        dim: usize,
        /// Required halo.
        needed: usize,
        /// Available halo.
        have: usize,
    },
    /// Wrong number of input grids passed to `apply_reference`.
    ArityMismatch {
        /// Expected inputs.
        expected: usize,
        /// Provided inputs.
        got: usize,
    },
    /// Output grid domain does not match the inputs.
    DomainMismatch,
}

impl fmt::Display for StencilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StencilError::UnknownGrid { grid, num_inputs } => {
                write!(
                    f,
                    "expression reads grid {grid} but stencil has {num_inputs} inputs"
                )
            }
            StencilError::HaloTooSmall {
                grid,
                dim,
                needed,
                have,
            } => write!(
                f,
                "input {grid} halo in dim {dim} is {have}, stencil needs {needed}"
            ),
            StencilError::ArityMismatch { expected, got } => {
                write!(f, "stencil takes {expected} inputs, got {got}")
            }
            StencilError::DomainMismatch => write!(f, "input/output domain sizes differ"),
        }
    }
}

impl std::error::Error for StencilError {}

/// A single out-of-place grid-update equation
/// `out(x,y,z) = expr(inputs, x, y, z)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Stencil {
    name: String,
    dims: usize,
    num_inputs: usize,
    expr: Expr,
}

impl Stencil {
    /// Creates a stencil and validates that the expression only references
    /// declared inputs.
    ///
    /// # Panics
    /// Panics if the expression references an undeclared grid (programming
    /// error in a builder); use [`Stencil::try_new`] for fallible
    /// construction from untrusted expressions.
    #[must_use]
    pub fn new(name: &str, dims: usize, num_inputs: usize, expr: Expr) -> Self {
        Self::try_new(name, dims, num_inputs, expr).expect("invalid stencil")
    }

    /// Fallible counterpart of [`Stencil::new`].
    ///
    /// # Errors
    /// Returns [`StencilError::UnknownGrid`] if the expression reads a grid
    /// id `>= num_inputs`.
    pub fn try_new(
        name: &str,
        dims: usize,
        num_inputs: usize,
        expr: Expr,
    ) -> Result<Self, StencilError> {
        let mut bad = None;
        expr.visit(&mut |e| {
            if let Expr::At { grid, .. } = e {
                if *grid >= num_inputs && bad.is_none() {
                    bad = Some(*grid);
                }
            }
        });
        if let Some(grid) = bad {
            return Err(StencilError::UnknownGrid { grid, num_inputs });
        }
        Ok(Stencil {
            name: name.to_string(),
            dims,
            num_inputs,
            expr,
        })
    }

    /// Stencil name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Spatial dimensionality (1, 2 or 3) — informational; storage is
    /// always 3-D.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of input grids the update reads.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The update expression.
    #[must_use]
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// Evaluates the expression at domain point `(i, j, k)`.
    ///
    /// # Panics
    /// Panics if `inputs.len() != num_inputs` (checked in debug builds for
    /// speed; `apply_reference` validates eagerly).
    #[inline]
    #[must_use]
    pub fn eval(&self, inputs: &[&Grid3], i: isize, j: isize, k: isize) -> f64 {
        debug_assert_eq!(inputs.len(), self.num_inputs);
        eval_expr(&self.expr, inputs, i, j, k)
    }

    /// Applies the stencil over the whole domain of `out` in simple
    /// z-y-x loop order. This is the correctness reference for every
    /// optimised execution path.
    ///
    /// # Errors
    /// Returns an error if arities, domains or halos are inconsistent.
    pub fn apply_reference(&self, inputs: &[&Grid3], out: &mut Grid3) -> Result<(), StencilError> {
        self.check_bindings(inputs, out)?;
        let n = out.n();
        for k in 0..n[2] as isize {
            for j in 0..n[1] as isize {
                for i in 0..n[0] as isize {
                    let v = eval_expr(&self.expr, inputs, i, j, k);
                    out.set(i, j, k, v);
                }
            }
        }
        Ok(())
    }

    /// Validates that `inputs`/`out` can legally carry this stencil:
    /// arity, equal domains, and halos at least as wide as the radius.
    ///
    /// # Errors
    /// See [`StencilError`].
    pub fn check_bindings(&self, inputs: &[&Grid3], out: &Grid3) -> Result<(), StencilError> {
        if inputs.len() != self.num_inputs {
            return Err(StencilError::ArityMismatch {
                expected: self.num_inputs,
                got: inputs.len(),
            });
        }
        let info = self.info();
        for (gi, g) in inputs.iter().enumerate() {
            if g.n() != out.n() {
                return Err(StencilError::DomainMismatch);
            }
            for d in 0..3 {
                if g.halo()[d] < info.radius[d] {
                    return Err(StencilError::HaloTooSmall {
                        grid: gi,
                        dim: d,
                        needed: info.radius[d],
                        have: g.halo()[d],
                    });
                }
            }
        }
        Ok(())
    }
}

#[inline]
fn eval_expr(e: &Expr, inputs: &[&Grid3], i: isize, j: isize, k: isize) -> f64 {
    match e {
        Expr::Const(v) => *v,
        Expr::At { grid, dx, dy, dz } => {
            inputs[*grid].get(i + *dx as isize, j + *dy as isize, k + *dz as isize)
        }
        Expr::Add(a, b) => eval_expr(a, inputs, i, j, k) + eval_expr(b, inputs, i, j, k),
        Expr::Sub(a, b) => eval_expr(a, inputs, i, j, k) - eval_expr(b, inputs, i, j, k),
        Expr::Mul(a, b) => eval_expr(a, inputs, i, j, k) * eval_expr(b, inputs, i, j, k),
        Expr::Neg(a) => -eval_expr(a, inputs, i, j, k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{at, c};
    use yasksite_grid::Fold;

    fn grid(n: [usize; 3], halo: [usize; 3]) -> Grid3 {
        Grid3::new("g", n, halo, Fold::unit())
    }

    #[test]
    fn try_new_rejects_unknown_grid() {
        let e = at(1, 0, 0, 0);
        assert_eq!(
            Stencil::try_new("s", 1, 1, e).unwrap_err(),
            StencilError::UnknownGrid {
                grid: 1,
                num_inputs: 1
            }
        );
    }

    #[test]
    fn eval_matches_hand_computation() {
        let s = Stencil::new("avg", 1, 1, c(0.5) * (at(0, -1, 0, 0) + at(0, 1, 0, 0)));
        let mut u = grid([4, 1, 1], [1, 0, 0]);
        u.fill_with(|i, _, _| i as f64);
        u.fill_halo(0.0);
        assert_eq!(s.eval(&[&u], 1, 0, 0), 0.5 * (0.0 + 2.0));
        assert_eq!(s.eval(&[&u], 0, 0, 0), 0.5 * (0.0 + 1.0));
    }

    #[test]
    fn apply_reference_writes_domain() {
        let s = Stencil::new("copy", 3, 1, at(0, 0, 0, 0) * c(2.0));
        let mut u = grid([3, 3, 3], [0, 0, 0]);
        u.fill_with(|i, j, k| (i + j + k) as f64);
        let mut out = grid([3, 3, 3], [0, 0, 0]);
        s.apply_reference(&[&u], &mut out).unwrap();
        assert_eq!(out.get(2, 2, 2), 12.0);
        assert_eq!(out.get(0, 0, 0), 0.0);
    }

    #[test]
    fn halo_check_enforced() {
        let s = Stencil::new("d", 1, 1, at(0, -2, 0, 0));
        let u = grid([4, 1, 1], [1, 0, 0]);
        let mut out = grid([4, 1, 1], [0, 0, 0]);
        match s.apply_reference(&[&u], &mut out) {
            Err(StencilError::HaloTooSmall {
                needed: 2, have: 1, ..
            }) => {}
            other => panic!("expected halo error, got {other:?}"),
        }
    }

    #[test]
    fn arity_check_enforced() {
        let s = Stencil::new("two", 1, 2, at(0, 0, 0, 0) + at(1, 0, 0, 0));
        let u = grid([2, 1, 1], [0, 0, 0]);
        let mut out = grid([2, 1, 1], [0, 0, 0]);
        assert_eq!(
            s.apply_reference(&[&u], &mut out).unwrap_err(),
            StencilError::ArityMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn domain_check_enforced() {
        let s = Stencil::new("c", 1, 1, at(0, 0, 0, 0));
        let u = grid([2, 1, 1], [0, 0, 0]);
        let mut out = grid([3, 1, 1], [0, 0, 0]);
        assert_eq!(
            s.apply_reference(&[&u], &mut out).unwrap_err(),
            StencilError::DomainMismatch
        );
    }
}
