//! Static stencil analysis — the inputs to the ECM model and the trace
//! generator.

use crate::expr::{Expr, GridId};
use crate::stencil::Stencil;

/// Static properties of a stencil update, per lattice point.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilInfo {
    /// Maximum absolute access offset per dimension.
    pub radius: [usize; 3],
    /// Distinct `(grid, offset)` read accesses per update.
    pub reads_per_point: usize,
    /// Distinct input grids actually read.
    pub read_grids: usize,
    /// Scalar additions/subtractions in one update.
    pub adds: usize,
    /// Scalar multiplications in one update.
    pub muls: usize,
    /// Scalar negations (executed on the add ports).
    pub negs: usize,
    /// Multiply–add pairs a fusing compiler emits as FMAs.
    pub fmas: usize,
    /// Additions left over after FMA fusion.
    pub adds_rem: usize,
    /// Multiplications left over after FMA fusion.
    pub muls_rem: usize,
    /// All distinct read accesses, sorted: `(grid, [dx, dy, dz])`.
    pub offsets: Vec<(GridId, [i32; 3])>,
}

impl StencilInfo {
    /// Total floating-point operations per lattice update (an FMA counts
    /// as two).
    #[must_use]
    pub fn flops(&self) -> usize {
        self.adds + self.muls + self.negs
    }

    /// Number of distinct read offsets touching input grid `g`.
    #[must_use]
    pub fn reads_of_grid(&self, g: GridId) -> usize {
        self.offsets.iter().filter(|(gi, _)| *gi == g).count()
    }

    /// Largest access offset along the given dimension for grid `g`
    /// (`(min, max)` as signed values).
    #[must_use]
    pub fn extent(&self, g: GridId, dim: usize) -> (i32, i32) {
        let mut lo = 0;
        let mut hi = 0;
        for (gi, o) in &self.offsets {
            if *gi == g {
                lo = lo.min(o[dim]);
                hi = hi.max(o[dim]);
            }
        }
        (lo, hi)
    }

    /// Distinct z-offsets read from grid `g` — the number of grid *layers*
    /// that must stay cache-resident for full reuse (layer condition input).
    #[must_use]
    pub fn layers_read(&self, g: GridId) -> usize {
        let mut zs: Vec<i32> = self
            .offsets
            .iter()
            .filter(|(gi, _)| *gi == g)
            .map(|(_, o)| o[2])
            .collect();
        zs.sort_unstable();
        zs.dedup();
        zs.len()
    }

    /// Distinct y-offsets read from grid `g` (rows per layer that must stay
    /// resident once the layer condition has broken down to row granularity).
    #[must_use]
    pub fn rows_read(&self, g: GridId) -> usize {
        let mut ys: Vec<(i32, i32)> = self
            .offsets
            .iter()
            .filter(|(gi, _)| *gi == g)
            .map(|(_, o)| (o[1], o[2]))
            .collect();
        ys.sort_unstable();
        ys.dedup();
        ys.len()
    }
}

impl Stencil {
    /// Computes the static analysis of this stencil.
    #[must_use]
    pub fn info(&self) -> StencilInfo {
        let mut offsets: Vec<(GridId, [i32; 3])> = Vec::new();
        let mut adds = 0;
        let mut muls = 0;
        let mut negs = 0;
        self.expr().visit(&mut |e| match e {
            Expr::At { grid, dx, dy, dz } => offsets.push((*grid, [*dx, *dy, *dz])),
            Expr::Add(..) | Expr::Sub(..) => adds += 1,
            Expr::Mul(..) => muls += 1,
            Expr::Neg(_) => negs += 1,
            Expr::Const(_) => {}
        });
        offsets.sort_unstable();
        offsets.dedup();

        let mut radius = [0usize; 3];
        for (_, o) in &offsets {
            for d in 0..3 {
                radius[d] = radius[d].max(o[d].unsigned_abs() as usize);
            }
        }
        let mut grids: Vec<GridId> = offsets.iter().map(|(g, _)| *g).collect();
        grids.dedup();

        let fmas = adds.min(muls);
        StencilInfo {
            radius,
            reads_per_point: offsets.len(),
            read_grids: grids.len(),
            adds,
            muls,
            negs,
            fmas,
            adds_rem: adds - fmas,
            muls_rem: muls - fmas,
            offsets,
        }
    }
}

/// Renders the stencil test-set table (experiment E1): one row per stencil
/// with its static properties.
#[must_use]
pub fn stencil_table(stencils: &[Stencil]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>4} {:>6} {:>7} {:>6} {:>6} {:>6} {:>6} {:>7}",
        "stencil", "dim", "radius", "points", "grids", "adds", "muls", "fmas", "flops"
    );
    for s in stencils {
        let i = s.info();
        let _ = writeln!(
            out,
            "{:<16} {:>4} {:>6} {:>7} {:>6} {:>6} {:>6} {:>6} {:>7}",
            s.name(),
            s.dims(),
            i.radius.iter().copied().max().unwrap_or(0),
            i.reads_per_point,
            i.read_grids,
            i.adds,
            i.muls,
            i.fmas,
            i.flops()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::expr::{at, c};

    #[test]
    fn heat3d_r1_counts() {
        let s = builders::heat3d(1);
        let i = s.info();
        assert_eq!(i.radius, [1, 1, 1]);
        assert_eq!(i.reads_per_point, 7);
        assert_eq!(i.read_grids, 1);
        assert_eq!(i.layers_read(0), 3);
        assert_eq!(i.rows_read(0), 5);
        // 5 adds to sum the six neighbours + 1 add joining the two terms,
        // 2 muls (centre coeff, neighbour coeff): 2 FMAs fusable.
        assert_eq!(i.adds, 6);
        assert_eq!(i.muls, 2);
        assert_eq!(i.fmas, 2);
        assert_eq!(i.flops(), 8);
    }

    #[test]
    fn duplicate_accesses_dedup() {
        let s = Stencil::new("dup", 1, 1, at(0, 0, 0, 0) + at(0, 0, 0, 0) * c(2.0));
        let i = s.info();
        assert_eq!(i.reads_per_point, 1);
        assert_eq!(i.radius, [0, 0, 0]);
    }

    #[test]
    fn extent_and_layers() {
        let s = Stencil::new(
            "skew",
            3,
            1,
            at(0, -2, 0, 0) + at(0, 0, 1, -1) + at(0, 0, 0, 3),
        );
        let i = s.info();
        assert_eq!(i.extent(0, 0), (-2, 0));
        assert_eq!(i.extent(0, 2), (-1, 3));
        assert_eq!(i.layers_read(0), 3); // z in {-1, 0, 3}
        assert_eq!(i.radius, [2, 1, 3]);
    }

    #[test]
    fn two_grid_stencil_counts_grids() {
        let s = builders::wave2d(0.3);
        let i = s.info();
        assert_eq!(i.read_grids, 2);
        assert!(i.reads_per_point >= 6);
    }

    #[test]
    fn table_mentions_every_stencil() {
        let suite = crate::paper_suite();
        let t = stencil_table(&suite);
        for s in &suite {
            assert!(t.contains(s.name()), "missing {}", s.name());
        }
    }
}
