//! The Offsite evaluation loop: enumerate, predict, rank, validate.

use std::sync::Arc;

use yasksite::telemetry::{Level, SpanGuard, Telemetry};
use yasksite::{
    run_trial_observed, FaultPlan, FaultyBackend, PredictionCache, Provenance, SearchSpace,
    Solution, ToolError, TrialBudget, TrialConfig, TrialResult, TrialSummary, TuneCost,
    TuneRequest, TuneStrategy,
};
use yasksite_arch::Machine;
use yasksite_engine::TuningParams;
use yasksite_ode::{Ivp, StepPlan, Variant};

use crate::method::MethodSpec;
use crate::plan_perf::{predict_plan, predict_plan_cached, PlanBackend};

/// Builder-style options for [`Offsite::evaluate_with`] — the offsite
/// mirror of the core [`TuneRequest`], consolidating the trial protocol,
/// budget, worker count, fault injection and cache choice behind one
/// type so the CLI and library share a single configuration path.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Measurement protocol for every plan measurement.
    pub trial: TrialConfig,
    /// Session-wide measurement budget; the final state comes back in
    /// [`EvalReport::budget`].
    pub budget: TrialBudget,
    /// Worker threads for the analytic tuning phase; `None` resolves via
    /// [`TuneRequest::default_jobs`]. The report is identical for every
    /// value.
    pub jobs: Option<usize>,
    /// Fault injection for plan measurements; `None` keeps whatever the
    /// [`Offsite`] instance itself was configured with.
    pub faults: Option<FaultPlan>,
    /// Prediction cache; `None` uses [`PredictionCache::global`].
    pub cache: Option<Arc<PredictionCache>>,
    /// Telemetry handle the evaluation records into; disabled by default
    /// and purely observational (the report is identical either way).
    pub telemetry: Telemetry,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            trial: TrialConfig::single_shot(),
            budget: TrialBudget::unlimited(),
            jobs: None,
            faults: None,
            cache: None,
            telemetry: Telemetry::disabled(),
        }
    }
}

impl EvalOptions {
    /// Options with the defaults of [`Offsite::evaluate`]: single-shot
    /// trials, unlimited budget, automatic jobs, no extra faults, the
    /// global cache.
    #[must_use]
    pub fn new() -> Self {
        EvalOptions::default()
    }

    /// Sets the measurement protocol.
    #[must_use]
    pub fn trial(mut self, trial: TrialConfig) -> Self {
        self.trial = trial;
        self
    }

    /// Sets the session budget.
    #[must_use]
    pub fn budget(mut self, budget: TrialBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Pins the analytic worker count.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Injects faults into every plan measurement.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Uses a private prediction cache instead of the global one.
    #[must_use]
    pub fn cache(mut self, cache: Arc<PredictionCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Records the evaluation into `telemetry` (spans, events, metrics).
    #[must_use]
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The cache these options resolve to.
    #[must_use]
    pub fn cache_ref(&self) -> &PredictionCache {
        self.cache
            .as_deref()
            .unwrap_or_else(|| PredictionCache::global())
    }
}

/// One evaluated `(method, variant)` candidate.
#[derive(Debug, Clone)]
pub struct CandidateReport {
    /// Method name.
    pub method: String,
    /// Implementation variant.
    pub variant: Variant,
    /// Tuning parameters YaskSite selected for the kernels.
    pub params: TuningParams,
    /// Predicted seconds per step.
    pub predicted_s: f64,
    /// Simulator-measured seconds per step (or the analytic prediction
    /// when measurement fell back — see `provenance`).
    pub measured_s: f64,
    /// `|predicted - measured| / measured` (zero for fallback candidates,
    /// whose "measurement" *is* the prediction).
    pub rel_err: f64,
    /// How `measured_s` was obtained.
    pub provenance: Provenance,
}

/// Full evaluation of an IVP across methods and variants.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// All candidates, sorted by measured step time (fastest first).
    pub candidates: Vec<CandidateReport>,
    /// Whether the prediction-ranked winner is also the measured winner.
    pub picked_best: bool,
    /// Measured rank (0-based) of the prediction-ranked winner.
    pub rank_of_pick: usize,
    /// Per-method speedup of the predicted pick over that method's naive
    /// baseline (variant A, unblocked, in-line fold): `(method, speedup)`.
    pub speedups: Vec<(String, f64)>,
    /// Mean relative prediction error over the *measured* (non-fallback)
    /// candidates; zero when every candidate fell back.
    pub mean_rel_err: f64,
    /// Maximum relative prediction error over the measured candidates.
    pub max_rel_err: f64,
    /// Cost of the *selection* work (model evaluations; what the paper's
    /// Offsite+YaskSite pipeline spends).
    pub select_cost: TuneCost,
    /// Cost of the validation measurements (what an exhaustive empirical
    /// tuner would spend).
    pub validate_cost: TuneCost,
    /// Aggregate trial statistics (samples, rejections, retries,
    /// fallbacks) across every measurement in the report.
    pub trials: TrialSummary,
    /// How many candidates rest on the analytic fallback rather than a
    /// real measurement.
    pub fallback_candidates: usize,
    /// Final state of the session budget.
    pub budget: TrialBudget,
}

/// The offline tuner bound to a machine model and an active core count.
#[derive(Debug, Clone)]
pub struct Offsite {
    machine: Machine,
    cores: usize,
    faults: Option<FaultPlan>,
}

impl Offsite {
    /// Creates the tuner for `cores` active cores of `machine`.
    #[must_use]
    pub fn new(machine: Machine, cores: usize) -> Self {
        Offsite {
            machine,
            cores,
            faults: None,
        }
    }

    /// Injects deterministic faults into every plan measurement this
    /// tuner performs (testing hook; each measurement gets a decorrelated
    /// sub-stream of `plan`).
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The target machine.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// YaskSite-tuned kernel parameters for this IVP: the analytic tuner
    /// runs on the dominant (RHS) kernel over the spatial-only space.
    ///
    /// # Errors
    /// Propagates tool errors.
    pub fn tuned_params(&self, ivp: &dyn Ivp) -> Result<(TuningParams, TuneCost), ToolError> {
        self.tuned_params_with(ivp, &EvalOptions::default())
    }

    /// [`Offsite::tuned_params`] under explicit [`EvalOptions`] (worker
    /// count and cache choice; the trial knobs are irrelevant to the
    /// purely analytic tuning phase).
    ///
    /// # Errors
    /// Propagates tool errors.
    pub fn tuned_params_with(
        &self,
        ivp: &dyn Ivp,
        opts: &EvalOptions,
    ) -> Result<(TuningParams, TuneCost), ToolError> {
        let rhs = ivp.rhs(0);
        let sol = Solution::new(rhs, ivp.domain(), self.machine.clone());
        let space = SearchSpace::spatial_only(sol.stencil(), ivp.domain(), &self.machine);
        let mut req = TuneRequest::new(TuneStrategy::Analytic)
            .cores(self.cores)
            .trial(TrialConfig::single_shot())
            .telemetry(opts.telemetry.clone());
        if let Some(jobs) = opts.jobs {
            req = req.jobs(jobs);
        }
        if let Some(cache) = &opts.cache {
            req = req.cache(cache.clone());
        }
        let r = sol.tune_space_with(&space, &req)?;
        let mut params = r.best;
        params.threads = self.cores;
        Ok((params, r.cost))
    }

    /// Naive baseline parameters: unblocked, in-line fold, no temporal
    /// blocking — what a straightforward OpenMP implementation does.
    #[must_use]
    pub fn naive_params(&self, ivp: &dyn Ivp) -> TuningParams {
        TuningParams::new(
            ivp.domain(),
            yasksite_grid::Fold::new(self.machine.lanes(), 1, 1),
        )
        .threads(self.cores)
    }

    /// One robust trial of a whole step plan: the plan backend is wrapped
    /// in the fault harness when faults are configured, and the analytic
    /// prediction serves as the fallback estimate.
    #[allow(clippy::too_many_arguments)]
    fn measure_step_trial(
        &self,
        plan: &StepPlan,
        params: &TuningParams,
        fallback_seconds: f64,
        stream: u64,
        faults: Option<FaultPlan>,
        cfg: &TrialConfig,
        budget: &mut TrialBudget,
        telemetry: &Telemetry,
        parent: Option<&SpanGuard>,
    ) -> TrialResult {
        let backend = PlanBackend::new(plan, &self.machine);
        match faults {
            Some(f) => run_trial_observed(
                &mut FaultyBackend::new(backend, f.stream(stream)),
                params,
                fallback_seconds,
                cfg,
                budget,
                telemetry,
                parent,
            ),
            None => {
                let mut backend = backend;
                run_trial_observed(
                    &mut backend,
                    params,
                    fallback_seconds,
                    cfg,
                    budget,
                    telemetry,
                    parent,
                )
            }
        }
    }

    /// Evaluates every `(method, variant)` candidate on `ivp` with step
    /// size `h`: predicts each, measures each on the simulated hierarchy,
    /// and reports prediction accuracy, ranking quality, per-method
    /// speedups over the naive baseline, and both cost ledgers.
    ///
    /// Each measurement is a single-shot trial with an unlimited budget;
    /// use [`Offsite::evaluate_with`] for the full knob set.
    ///
    /// # Errors
    /// Returns [`ToolError::InvalidInput`] for an empty method list and
    /// propagates tool errors from parameter tuning. Measurement failures
    /// do *not* error — the candidate degrades to its analytic prediction
    /// with [`Provenance::PredictedFallback`].
    pub fn evaluate(
        &self,
        ivp: &dyn Ivp,
        methods: &[MethodSpec],
        h: f64,
    ) -> Result<EvalReport, ToolError> {
        self.evaluate_with(ivp, methods, h, &EvalOptions::default())
    }

    /// [`Offsite::evaluate`] with an explicit trial protocol.
    /// Compatibility wrapper over [`Offsite::evaluate_with`] that mutates
    /// the caller's `budget` in place; new code should carry the protocol
    /// in an [`EvalOptions`].
    ///
    /// # Errors
    /// As [`Offsite::evaluate_with`].
    pub fn evaluate_trials(
        &self,
        ivp: &dyn Ivp,
        methods: &[MethodSpec],
        h: f64,
        cfg: &TrialConfig,
        budget: &mut TrialBudget,
    ) -> Result<EvalReport, ToolError> {
        let opts = EvalOptions::default().trial(*cfg).budget(*budget);
        let r = self.evaluate_with(ivp, methods, h, &opts)?;
        *budget = r.budget;
        Ok(r)
    }

    /// The canonical evaluation entry point: every plan measurement
    /// (candidates and naive baselines) runs under the options' trial
    /// protocol against the options' budget, falling back to the analytic
    /// prediction when sampling fails or the budget runs out. The
    /// analytic tuning phase fans out over the options' worker count and
    /// serves predictions from the options' cache; the report is
    /// identical for every worker count.
    ///
    /// # Errors
    /// Returns [`ToolError::InvalidInput`] for an empty method list or a
    /// method without variants; propagates tool errors from parameter
    /// tuning. Measurement failures never error.
    pub fn evaluate_with(
        &self,
        ivp: &dyn Ivp,
        methods: &[MethodSpec],
        h: f64,
        opts: &EvalOptions,
    ) -> Result<EvalReport, ToolError> {
        if methods.is_empty() {
            return Err(ToolError::InvalidInput("no methods to evaluate".into()));
        }
        let cfg = &opts.trial;
        let mut budget = opts.budget;
        let budget = &mut budget;
        let faults = opts.faults.or(self.faults);
        let cache = opts.cache_ref();
        let tel = &opts.telemetry;
        let session = tel.span("eval_session");
        tel.event(
            Level::Info,
            "session_start",
            session.id(),
            &[
                ("strategy", "offsite".into()),
                ("cores", self.cores.into()),
                ("methods", methods.len().into()),
            ],
        );
        let mut select_cost = TuneCost::default();
        let mut validate_cost = TuneCost::default();
        let mut trials = TrialSummary::default();
        let (params, tune_cost) = self.tuned_params_with(ivp, opts)?;
        select_cost += tune_cost;

        let mut candidates = Vec::new();
        let mut speedups = Vec::new();
        let mut stream = 0u64;
        for m in methods {
            let mut per_method: Vec<usize> = Vec::new();
            for v in m.variants() {
                let plan = m.plan(ivp, h, v);
                let t0 = std::time::Instant::now();
                let pred = predict_plan_cached(&plan, &self.machine, &params, self.cores, cache);
                select_cost.model_evals += plan.ops.len();
                select_cost.cache_hits += pred.cache_hits;
                select_cost.cache_misses += pred.cache_misses;
                select_cost.wall_seconds += t0.elapsed().as_secs_f64();

                let t1 = std::time::Instant::now();
                let r = self.measure_step_trial(
                    &plan,
                    &params,
                    pred.seconds_per_step,
                    stream,
                    faults,
                    cfg,
                    budget,
                    tel,
                    Some(&session),
                );
                stream += 1;
                validate_cost.engine_runs += r.attempts;
                validate_cost.target_seconds += 2.0 * r.seconds_per_sweep;
                validate_cost.wall_seconds += t1.elapsed().as_secs_f64();
                trials.absorb(&r);

                let measured_s = r.seconds_per_sweep;
                per_method.push(candidates.len());
                candidates.push(CandidateReport {
                    method: m.name(),
                    variant: v,
                    params: params.clone(),
                    predicted_s: pred.seconds_per_step,
                    measured_s,
                    rel_err: (pred.seconds_per_step - measured_s).abs() / measured_s.max(1e-300),
                    provenance: r.provenance,
                });
            }
            // Per-method speedup: predicted pick vs naive variant-A run.
            let Some(pick) = per_method.iter().copied().min_by(|&a, &b| {
                candidates[a]
                    .predicted_s
                    .total_cmp(&candidates[b].predicted_s)
            }) else {
                return Err(ToolError::InvalidInput(format!(
                    "method {} has no variants",
                    m.name()
                )));
            };
            let naive = self.naive_params(ivp);
            let base_plan = m.plan(ivp, h, Variant::A);
            let base_pred =
                predict_plan_cached(&base_plan, &self.machine, &naive, self.cores, cache);
            select_cost.cache_hits += base_pred.cache_hits;
            select_cost.cache_misses += base_pred.cache_misses;
            let base = self.measure_step_trial(
                &base_plan,
                &naive,
                base_pred.seconds_per_step,
                stream,
                faults,
                cfg,
                budget,
                tel,
                Some(&session),
            );
            stream += 1;
            validate_cost.engine_runs += base.attempts;
            validate_cost.target_seconds += 2.0 * base.seconds_per_sweep;
            trials.absorb(&base);
            speedups.push((
                m.name(),
                base.seconds_per_sweep / candidates[pick].measured_s,
            ));
        }

        // Ranking quality: where does the prediction's favourite land in
        // the measured order? `candidates` is non-empty here (each method
        // contributed at least one variant), so the fallbacks to index 0
        // are unreachable — they just keep the API panic-free.
        let pred_pick = (0..candidates.len())
            .min_by(|&a, &b| {
                candidates[a]
                    .predicted_s
                    .total_cmp(&candidates[b].predicted_s)
            })
            .unwrap_or(0);
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by(|&a, &b| {
            candidates[a]
                .measured_s
                .total_cmp(&candidates[b].measured_s)
        });
        let rank_of_pick = order.iter().position(|&i| i == pred_pick).unwrap_or(0);

        // Prediction accuracy is only meaningful against real
        // measurements; fallback candidates compare the model to itself.
        let measured_errs: Vec<f64> = candidates
            .iter()
            .filter(|c| !c.provenance.is_fallback())
            .map(|c| c.rel_err)
            .collect();
        let mean_rel_err = if measured_errs.is_empty() {
            0.0
        } else {
            measured_errs.iter().sum::<f64>() / measured_errs.len() as f64
        };
        let max_rel_err = measured_errs.iter().copied().fold(0.0, f64::max);
        let fallback_candidates = candidates
            .iter()
            .filter(|c| c.provenance.is_fallback())
            .count();
        let mut sorted = candidates.clone();
        sorted.sort_by(|a, b| a.measured_s.total_cmp(&b.measured_s));
        tel.event(
            Level::Info,
            "session_end",
            session.id(),
            &[
                ("candidates", sorted.len().into()),
                ("rank_of_pick", rank_of_pick.into()),
                ("fallback_candidates", fallback_candidates.into()),
            ],
        );
        Ok(EvalReport {
            candidates: sorted,
            picked_best: rank_of_pick == 0,
            rank_of_pick,
            speedups,
            mean_rel_err,
            max_rel_err,
            select_cost,
            validate_cost,
            trials,
            fallback_candidates,
            budget: *budget,
        })
    }
}

/// One row of a work–precision ranking: the predicted wall time to
/// integrate a unit time interval at a given accuracy with this
/// candidate.
#[derive(Debug, Clone)]
pub struct WorkPrecisionEntry {
    /// Method name.
    pub method: String,
    /// Implementation variant.
    pub variant: Variant,
    /// Method order.
    pub order: usize,
    /// Step size implied by the tolerance (`h = tol^(1/p)`, normalised
    /// error constant).
    pub step_size: f64,
    /// Predicted seconds for the whole integration.
    pub predicted_total_s: f64,
}

impl Offsite {
    /// Ranks `(method, variant)` candidates by the *work to reach a
    /// tolerance*, the criterion Offsite actually optimises: an order-`p`
    /// method needs `h ≈ tol^(1/p)` (error constants normalised to 1), so
    /// the predicted total time over `[0, t_end]` is
    /// `ceil(t_end / h) · predicted_step_time(h)`. Higher-order methods
    /// cost more per step but win at tight tolerances — the ranking
    /// exposes the crossover.
    ///
    /// Returns entries sorted by predicted total time, fastest first.
    ///
    /// # Errors
    /// Returns [`ToolError::InvalidInput`] for an empty method list or a
    /// non-positive `tol`/`t_end`; propagates tool errors from parameter
    /// tuning.
    pub fn rank_by_tolerance(
        &self,
        ivp: &dyn Ivp,
        methods: &[MethodSpec],
        tol: f64,
        t_end: f64,
    ) -> Result<Vec<WorkPrecisionEntry>, ToolError> {
        if methods.is_empty() {
            return Err(ToolError::InvalidInput("no methods to rank".into()));
        }
        if !(tol > 0.0 && t_end > 0.0) {
            return Err(ToolError::InvalidInput(
                "tolerance and horizon must be positive".into(),
            ));
        }
        let (params, _) = self.tuned_params(ivp)?;
        let mut out = Vec::new();
        for m in methods {
            let p = m.order().max(1);
            let h = tol.powf(1.0 / p as f64);
            let steps = (t_end / h).ceil().max(1.0);
            for v in m.variants() {
                let plan = m.plan(ivp, h, v);
                let pred = predict_plan(&plan, &self.machine, &params, self.cores);
                out.push(WorkPrecisionEntry {
                    method: m.name(),
                    variant: v,
                    order: p,
                    step_size: h,
                    predicted_total_s: steps * pred.seconds_per_step,
                });
            }
        }
        out.sort_by(|a, b| a.predicted_total_s.total_cmp(&b.predicted_total_s));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_ode::ivps::{Heat2d, Heat3d};
    use yasksite_ode::Tableau;

    #[test]
    fn evaluate_heat2d_small() {
        let offsite = Offsite::new(Machine::cascade_lake(), 1);
        let ivp = Heat2d::new(48);
        let methods = [MethodSpec::erk(Tableau::heun2())];
        let r = offsite.evaluate(&ivp, &methods, 1e-5).unwrap();
        assert_eq!(r.candidates.len(), 4); // variants A, B, D, E
        assert!(r.mean_rel_err.is_finite());
        assert!(r.rank_of_pick < 3);
        for (m, s) in &r.speedups {
            assert!(*s > 0.0, "{m} speedup {s}");
        }
        // Selection spends model evals, validation spends runs.
        assert!(r.select_cost.model_evals > 0);
        assert_eq!(r.select_cost.engine_runs, 0);
        assert!(r.validate_cost.engine_runs >= 4);
        // A clean backend measures everything for real.
        assert_eq!(r.fallback_candidates, 0);
        assert_eq!(r.trials.fallbacks, 0);
        assert!(r.trials.samples >= r.candidates.len());
        for c in &r.candidates {
            assert_eq!(c.provenance, Provenance::Measured);
        }
    }

    #[test]
    fn tuned_params_use_requested_cores() {
        let offsite = Offsite::new(Machine::rome(), 4);
        let ivp = Heat3d::new(32);
        let (p, cost) = offsite.tuned_params(&ivp).unwrap();
        assert_eq!(p.threads, 4);
        assert!(cost.model_evals > 0);
    }

    #[test]
    fn work_precision_crossover() {
        // At a loose tolerance the cheap low-order method wins; at a
        // tight tolerance the high-order method overtakes it.
        let offsite = Offsite::new(Machine::cascade_lake(), 1);
        let ivp = Heat2d::new(32);
        let methods = [
            MethodSpec::erk(Tableau::euler()),
            MethodSpec::erk(Tableau::rk4()),
        ];
        let loose = offsite.rank_by_tolerance(&ivp, &methods, 0.5, 1.0).unwrap();
        let tight = offsite
            .rank_by_tolerance(&ivp, &methods, 1e-10, 1.0)
            .unwrap();
        assert_eq!(loose[0].method, "euler", "loose tolerance favours Euler");
        assert_eq!(tight[0].method, "rk4", "tight tolerance favours RK4");
        // Sorted ascending by predicted time.
        for w in loose.windows(2) {
            assert!(w[0].predicted_total_s <= w[1].predicted_total_s);
        }
        // Step sizes follow h = tol^(1/p).
        let rk4 = tight.iter().find(|e| e.method == "rk4").unwrap();
        assert!((rk4.step_size - 1e-10f64.powf(0.25)).abs() < 1e-12);
    }

    #[test]
    fn naive_params_are_unblocked() {
        let offsite = Offsite::new(Machine::cascade_lake(), 2);
        let ivp = Heat2d::new(32);
        let p = offsite.naive_params(&ivp);
        assert_eq!(p.block, [32, 32, 1]);
        assert_eq!(p.wavefront, 1);
    }

    #[test]
    fn empty_inputs_are_errors_not_panics() {
        let offsite = Offsite::new(Machine::cascade_lake(), 1);
        let ivp = Heat2d::new(16);
        let err = offsite.evaluate(&ivp, &[], 1e-5).unwrap_err();
        assert!(matches!(err, ToolError::InvalidInput(_)), "{err}");
        let methods = [MethodSpec::erk(Tableau::euler())];
        let err = offsite.rank_by_tolerance(&ivp, &[], 1e-3, 1.0).unwrap_err();
        assert!(matches!(err, ToolError::InvalidInput(_)), "{err}");
        let err = offsite
            .rank_by_tolerance(&ivp, &methods, -1.0, 1.0)
            .unwrap_err();
        assert!(matches!(err, ToolError::InvalidInput(_)), "{err}");
    }

    #[test]
    fn total_measurement_failure_degrades_to_the_model() {
        let ivp = Heat2d::new(32);
        let methods = [MethodSpec::erk(Tableau::heun2())];
        let eval = |seed: u64| {
            Offsite::new(Machine::cascade_lake(), 1)
                .with_faults(FaultPlan::always_fail(seed))
                .evaluate(&ivp, &methods, 1e-5)
                .unwrap()
        };
        let r = eval(7);
        assert_eq!(r.candidates.len(), 4);
        assert_eq!(r.fallback_candidates, r.candidates.len());
        for c in &r.candidates {
            assert!(c.provenance.is_fallback(), "{:?}", c.provenance);
            // The "measurement" is the analytic prediction itself.
            assert_eq!(c.measured_s, c.predicted_s);
            assert!(c.measured_s.is_finite() && c.measured_s > 0.0);
        }
        // No real measurements -> no accuracy claim.
        assert_eq!(r.mean_rel_err, 0.0);
        assert_eq!(r.max_rel_err, 0.0);
        // The pick equals the model's favourite, so the report agrees
        // with itself.
        assert!(r.picked_best);
        // Deterministic: the same fault seed reproduces the report.
        let r2 = eval(7);
        for (a, b) in r.candidates.iter().zip(&r2.candidates) {
            assert_eq!(a.method, b.method);
            assert_eq!(a.variant, b.variant);
            assert_eq!(a.measured_s.to_bits(), b.measured_s.to_bits());
        }
    }

    #[test]
    fn evaluate_with_is_jobs_invariant() {
        let ivp = Heat2d::new(32);
        let methods = [MethodSpec::erk(Tableau::heun2())];
        let offsite = Offsite::new(Machine::cascade_lake(), 1);
        let run = |jobs: usize| {
            offsite
                .evaluate_with(
                    &ivp,
                    &methods,
                    1e-5,
                    &EvalOptions::new()
                        .jobs(jobs)
                        .cache(Arc::new(PredictionCache::new())),
                )
                .unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.candidates.len(), b.candidates.len());
        for (x, y) in a.candidates.iter().zip(&b.candidates) {
            assert_eq!(x.method, y.method);
            assert_eq!(x.variant, y.variant);
            assert_eq!(x.params, y.params);
            assert_eq!(x.predicted_s.to_bits(), y.predicted_s.to_bits());
            assert_eq!(x.measured_s.to_bits(), y.measured_s.to_bits());
        }
        assert_eq!(a.rank_of_pick, b.rank_of_pick);
        assert_eq!(
            a.select_cost.without_cache_counters().model_evals,
            b.select_cost.without_cache_counters().model_evals
        );
    }

    #[test]
    fn repeated_evaluation_hits_the_cache() {
        let ivp = Heat2d::new(32);
        let methods = [MethodSpec::erk(Tableau::heun2())];
        let offsite = Offsite::new(Machine::cascade_lake(), 1);
        let opts = EvalOptions::new().cache(Arc::new(PredictionCache::new()));
        let cold = offsite.evaluate_with(&ivp, &methods, 1e-5, &opts).unwrap();
        assert!(cold.select_cost.cache_misses > 0);
        let warm = offsite.evaluate_with(&ivp, &methods, 1e-5, &opts).unwrap();
        assert_eq!(warm.select_cost.cache_misses, 0, "second run fully cached");
        assert!(warm.select_cost.cache_hits > 0);
        for (x, y) in cold.candidates.iter().zip(&warm.candidates) {
            assert_eq!(x.predicted_s.to_bits(), y.predicted_s.to_bits());
        }
    }

    #[test]
    fn observed_evaluation_matches_unobserved_and_balances_spans() {
        let ivp = Heat2d::new(32);
        let methods = [MethodSpec::erk(Tableau::heun2())];
        let offsite = Offsite::new(Machine::cascade_lake(), 1);
        let plain = offsite
            .evaluate_with(
                &ivp,
                &methods,
                1e-5,
                &EvalOptions::new().cache(Arc::new(PredictionCache::new())),
            )
            .unwrap();
        let (tel, sink) = Telemetry::recording(Level::Debug);
        let observed = offsite
            .evaluate_with(
                &ivp,
                &methods,
                1e-5,
                &EvalOptions::new()
                    .cache(Arc::new(PredictionCache::new()))
                    .telemetry(tel.clone()),
            )
            .unwrap();
        for (x, y) in plain.candidates.iter().zip(&observed.candidates) {
            assert_eq!(x.method, y.method);
            assert_eq!(x.variant, y.variant);
            assert_eq!(x.predicted_s.to_bits(), y.predicted_s.to_bits());
            assert_eq!(x.measured_s.to_bits(), y.measured_s.to_bits());
        }
        assert_eq!(plain.rank_of_pick, observed.rank_of_pick);
        let joined = sink.lines().join("\n");
        let stats = yasksite::telemetry::check_trace(&joined).expect("balanced trace");
        assert_eq!(stats.spans_opened, stats.spans_closed);
        assert!(stats.spans_opened > 0, "eval session must open spans");
    }

    #[test]
    fn noisy_faults_keep_the_report_finite() {
        let offsite = Offsite::new(Machine::cascade_lake(), 1).with_faults(FaultPlan::noisy(42));
        let ivp = Heat2d::new(32);
        let methods = [MethodSpec::erk(Tableau::heun2())];
        let cfg = TrialConfig::default();
        let mut budget = TrialBudget::unlimited();
        let r = offsite
            .evaluate_trials(&ivp, &methods, 1e-5, &cfg, &mut budget)
            .unwrap();
        assert_eq!(r.candidates.len(), 4);
        for c in &r.candidates {
            assert!(c.measured_s.is_finite() && c.measured_s > 0.0);
        }
        assert!(r.mean_rel_err.is_finite());
        for (_, s) in &r.speedups {
            assert!(s.is_finite() && *s > 0.0);
        }
    }
}
