//! The Offsite evaluation loop: enumerate, predict, rank, validate.

use yasksite::{SearchSpace, Solution, ToolError, TuneCost, TuneStrategy};
use yasksite_arch::Machine;
use yasksite_engine::TuningParams;
use yasksite_ode::{Ivp, Variant};

use crate::method::MethodSpec;
use crate::plan_perf::{measure_plan, predict_plan};

/// One evaluated `(method, variant)` candidate.
#[derive(Debug, Clone)]
pub struct CandidateReport {
    /// Method name.
    pub method: String,
    /// Implementation variant.
    pub variant: Variant,
    /// Tuning parameters YaskSite selected for the kernels.
    pub params: TuningParams,
    /// Predicted seconds per step.
    pub predicted_s: f64,
    /// Simulator-measured seconds per step.
    pub measured_s: f64,
    /// `|predicted - measured| / measured`.
    pub rel_err: f64,
}

/// Full evaluation of an IVP across methods and variants.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// All candidates, sorted by measured step time (fastest first).
    pub candidates: Vec<CandidateReport>,
    /// Whether the prediction-ranked winner is also the measured winner.
    pub picked_best: bool,
    /// Measured rank (0-based) of the prediction-ranked winner.
    pub rank_of_pick: usize,
    /// Per-method speedup of the predicted pick over that method's naive
    /// baseline (variant A, unblocked, in-line fold): `(method, speedup)`.
    pub speedups: Vec<(String, f64)>,
    /// Mean relative prediction error over all candidates.
    pub mean_rel_err: f64,
    /// Maximum relative prediction error.
    pub max_rel_err: f64,
    /// Cost of the *selection* work (model evaluations; what the paper's
    /// Offsite+YaskSite pipeline spends).
    pub select_cost: TuneCost,
    /// Cost of the validation measurements (what an exhaustive empirical
    /// tuner would spend).
    pub validate_cost: TuneCost,
}

/// The offline tuner bound to a machine model and an active core count.
#[derive(Debug, Clone)]
pub struct Offsite {
    machine: Machine,
    cores: usize,
}

impl Offsite {
    /// Creates the tuner for `cores` active cores of `machine`.
    #[must_use]
    pub fn new(machine: Machine, cores: usize) -> Self {
        Offsite { machine, cores }
    }

    /// The target machine.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// YaskSite-tuned kernel parameters for this IVP: the analytic tuner
    /// runs on the dominant (RHS) kernel over the spatial-only space.
    ///
    /// # Errors
    /// Propagates tool errors.
    pub fn tuned_params(&self, ivp: &dyn Ivp) -> Result<(TuningParams, TuneCost), ToolError> {
        let rhs = ivp.rhs(0);
        let sol = Solution::new(rhs, ivp.domain(), self.machine.clone());
        let space = SearchSpace::spatial_only(sol.stencil(), ivp.domain(), &self.machine);
        let r = sol.tune_space(&space, TuneStrategy::Analytic, self.cores)?;
        let mut params = r.best;
        params.threads = self.cores;
        Ok((params, r.cost))
    }

    /// Naive baseline parameters: unblocked, in-line fold, no temporal
    /// blocking — what a straightforward OpenMP implementation does.
    #[must_use]
    pub fn naive_params(&self, ivp: &dyn Ivp) -> TuningParams {
        TuningParams::new(
            ivp.domain(),
            yasksite_grid::Fold::new(self.machine.lanes(), 1, 1),
        )
        .threads(self.cores)
    }

    /// Evaluates every `(method, variant)` candidate on `ivp` with step
    /// size `h`: predicts each, measures each on the simulated hierarchy,
    /// and reports prediction accuracy, ranking quality, per-method
    /// speedups over the naive baseline, and both cost ledgers.
    ///
    /// # Errors
    /// Propagates engine/tool errors.
    ///
    /// # Panics
    /// Panics if `methods` is empty.
    pub fn evaluate(
        &self,
        ivp: &dyn Ivp,
        methods: &[MethodSpec],
        h: f64,
    ) -> Result<EvalReport, ToolError> {
        assert!(!methods.is_empty(), "no methods to evaluate");
        let mut select_cost = TuneCost::default();
        let mut validate_cost = TuneCost::default();
        let (params, tune_cost) = self.tuned_params(ivp)?;
        select_cost += tune_cost;

        let mut candidates = Vec::new();
        let mut speedups = Vec::new();
        for m in methods {
            let mut per_method: Vec<usize> = Vec::new();
            for v in m.variants() {
                let plan = m.plan(ivp, h, v);
                let t0 = std::time::Instant::now();
                let pred = predict_plan(&plan, &self.machine, &params, self.cores);
                select_cost.model_evals += plan.ops.len();
                select_cost.wall_seconds += t0.elapsed().as_secs_f64();

                let t1 = std::time::Instant::now();
                let meas = measure_plan(&plan, &self.machine, &params)?;
                validate_cost.engine_runs += 1;
                validate_cost.target_seconds += 2.0 * meas.seconds_per_step;
                validate_cost.wall_seconds += t1.elapsed().as_secs_f64();

                per_method.push(candidates.len());
                candidates.push(CandidateReport {
                    method: m.name(),
                    variant: v,
                    params: params.clone(),
                    predicted_s: pred.seconds_per_step,
                    measured_s: meas.seconds_per_step,
                    rel_err: (pred.seconds_per_step - meas.seconds_per_step).abs()
                        / meas.seconds_per_step,
                });
            }
            // Per-method speedup: predicted pick vs naive variant-A run.
            let pick = per_method
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    candidates[a]
                        .predicted_s
                        .total_cmp(&candidates[b].predicted_s)
                })
                .expect("method has variants");
            let naive = self.naive_params(ivp);
            let base_plan = m.plan(ivp, h, Variant::A);
            let base = measure_plan(&base_plan, &self.machine, &naive)?;
            validate_cost.engine_runs += 1;
            validate_cost.target_seconds += 2.0 * base.seconds_per_step;
            speedups.push((
                m.name(),
                base.seconds_per_step / candidates[pick].measured_s,
            ));
        }

        // Ranking quality: where does the prediction's favourite land in
        // the measured order?
        let pred_pick = (0..candidates.len())
            .min_by(|&a, &b| candidates[a].predicted_s.total_cmp(&candidates[b].predicted_s))
            .expect("non-empty");
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by(|&a, &b| candidates[a].measured_s.total_cmp(&candidates[b].measured_s));
        let rank_of_pick = order.iter().position(|&i| i == pred_pick).expect("present");

        let mean_rel_err =
            candidates.iter().map(|c| c.rel_err).sum::<f64>() / candidates.len() as f64;
        let max_rel_err = candidates.iter().map(|c| c.rel_err).fold(0.0, f64::max);
        let mut sorted = candidates.clone();
        sorted.sort_by(|a, b| a.measured_s.total_cmp(&b.measured_s));
        Ok(EvalReport {
            candidates: sorted,
            picked_best: rank_of_pick == 0,
            rank_of_pick,
            speedups,
            mean_rel_err,
            max_rel_err,
            select_cost,
            validate_cost,
        })
    }
}

/// One row of a work–precision ranking: the predicted wall time to
/// integrate a unit time interval at a given accuracy with this
/// candidate.
#[derive(Debug, Clone)]
pub struct WorkPrecisionEntry {
    /// Method name.
    pub method: String,
    /// Implementation variant.
    pub variant: Variant,
    /// Method order.
    pub order: usize,
    /// Step size implied by the tolerance (`h = tol^(1/p)`, normalised
    /// error constant).
    pub step_size: f64,
    /// Predicted seconds for the whole integration.
    pub predicted_total_s: f64,
}

impl Offsite {
    /// Ranks `(method, variant)` candidates by the *work to reach a
    /// tolerance*, the criterion Offsite actually optimises: an order-`p`
    /// method needs `h ≈ tol^(1/p)` (error constants normalised to 1), so
    /// the predicted total time over `[0, t_end]` is
    /// `ceil(t_end / h) · predicted_step_time(h)`. Higher-order methods
    /// cost more per step but win at tight tolerances — the ranking
    /// exposes the crossover.
    ///
    /// Returns entries sorted by predicted total time, fastest first.
    ///
    /// # Errors
    /// Propagates tool errors from parameter tuning.
    ///
    /// # Panics
    /// Panics if `methods` is empty or `tol`/`t_end` are not positive.
    pub fn rank_by_tolerance(
        &self,
        ivp: &dyn Ivp,
        methods: &[MethodSpec],
        tol: f64,
        t_end: f64,
    ) -> Result<Vec<WorkPrecisionEntry>, ToolError> {
        assert!(!methods.is_empty(), "no methods to rank");
        assert!(tol > 0.0 && t_end > 0.0, "tolerance and horizon must be positive");
        let (params, _) = self.tuned_params(ivp)?;
        let mut out = Vec::new();
        for m in methods {
            let p = m.order().max(1);
            let h = tol.powf(1.0 / p as f64);
            let steps = (t_end / h).ceil().max(1.0);
            for v in m.variants() {
                let plan = m.plan(ivp, h, v);
                let pred = predict_plan(&plan, &self.machine, &params, self.cores);
                out.push(WorkPrecisionEntry {
                    method: m.name(),
                    variant: v,
                    order: p,
                    step_size: h,
                    predicted_total_s: steps * pred.seconds_per_step,
                });
            }
        }
        out.sort_by(|a, b| a.predicted_total_s.total_cmp(&b.predicted_total_s));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_ode::ivps::{Heat2d, Heat3d};
    use yasksite_ode::Tableau;

    #[test]
    fn evaluate_heat2d_small() {
        let offsite = Offsite::new(Machine::cascade_lake(), 1);
        let ivp = Heat2d::new(48);
        let methods = [MethodSpec::erk(Tableau::heun2())];
        let r = offsite.evaluate(&ivp, &methods, 1e-5).unwrap();
        assert_eq!(r.candidates.len(), 4); // variants A, B, D, E
        assert!(r.mean_rel_err.is_finite());
        assert!(r.rank_of_pick < 3);
        for (m, s) in &r.speedups {
            assert!(*s > 0.0, "{m} speedup {s}");
        }
        // Selection spends model evals, validation spends runs.
        assert!(r.select_cost.model_evals > 0);
        assert_eq!(r.select_cost.engine_runs, 0);
        assert!(r.validate_cost.engine_runs >= 4);
    }

    #[test]
    fn tuned_params_use_requested_cores() {
        let offsite = Offsite::new(Machine::rome(), 4);
        let ivp = Heat3d::new(32);
        let (p, cost) = offsite.tuned_params(&ivp).unwrap();
        assert_eq!(p.threads, 4);
        assert!(cost.model_evals > 0);
    }

    #[test]
    fn work_precision_crossover() {
        // At a loose tolerance the cheap low-order method wins; at a
        // tight tolerance the high-order method overtakes it.
        let offsite = Offsite::new(Machine::cascade_lake(), 1);
        let ivp = Heat2d::new(32);
        let methods = [
            MethodSpec::erk(Tableau::euler()),
            MethodSpec::erk(Tableau::rk4()),
        ];
        let loose = offsite.rank_by_tolerance(&ivp, &methods, 0.5, 1.0).unwrap();
        let tight = offsite.rank_by_tolerance(&ivp, &methods, 1e-10, 1.0).unwrap();
        assert_eq!(loose[0].method, "euler", "loose tolerance favours Euler");
        assert_eq!(tight[0].method, "rk4", "tight tolerance favours RK4");
        // Sorted ascending by predicted time.
        for w in loose.windows(2) {
            assert!(w[0].predicted_total_s <= w[1].predicted_total_s);
        }
        // Step sizes follow h = tol^(1/p).
        let rk4 = tight.iter().find(|e| e.method == "rk4").unwrap();
        assert!((rk4.step_size - 1e-10f64.powf(0.25)).abs() < 1e-12);
    }

    #[test]
    fn naive_params_are_unblocked() {
        let offsite = Offsite::new(Machine::cascade_lake(), 2);
        let ivp = Heat2d::new(32);
        let p = offsite.naive_params(&ivp);
        assert_eq!(p.block, [32, 32, 1]);
        assert_eq!(p.wavefront, 1);
    }
}
