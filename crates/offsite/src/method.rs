//! Method specifications Offsite enumerates.

use yasksite_ode::{erk_plan, pirk_plan, Ivp, StepPlan, Tableau, Variant};

/// An explicit time-integration method: a plain ERK tableau or a PIRK
/// predictor–corrector scheme.
#[derive(Debug, Clone)]
pub enum MethodSpec {
    /// Explicit Runge–Kutta method.
    Erk(Tableau),
    /// Parallel iterated Runge–Kutta: fixed-point iterations of an
    /// implicit corrector.
    Pirk {
        /// The implicit corrector tableau.
        corrector: Tableau,
        /// Number of correction iterations.
        iters: usize,
    },
}

impl MethodSpec {
    /// Wraps an explicit tableau.
    #[must_use]
    pub fn erk(t: Tableau) -> Self {
        MethodSpec::Erk(t)
    }

    /// Builds a PIRK method with `iters` corrections.
    #[must_use]
    pub fn pirk(corrector: Tableau, iters: usize) -> Self {
        MethodSpec::Pirk { corrector, iters }
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            MethodSpec::Erk(t) => t.name().to_string(),
            MethodSpec::Pirk { corrector, iters } => {
                format!("pirk-{}x{}", corrector.name(), iters)
            }
        }
    }

    /// Which variants are defined for this method.
    #[must_use]
    pub fn variants(&self) -> Vec<Variant> {
        match self {
            MethodSpec::Erk(_) => vec![Variant::A, Variant::B, Variant::D, Variant::E],
            MethodSpec::Pirk { .. } => vec![Variant::A, Variant::D],
        }
    }

    /// Compiles one step on `ivp` with step size `h`.
    #[must_use]
    pub fn plan(&self, ivp: &dyn Ivp, h: f64, variant: Variant) -> StepPlan {
        match self {
            MethodSpec::Erk(t) => erk_plan(t, ivp, h, variant),
            MethodSpec::Pirk { corrector, iters } => pirk_plan(corrector, *iters, ivp, h, variant),
        }
    }

    /// Convergence order of the method (PIRK: limited by the number of
    /// correction iterations).
    #[must_use]
    pub fn order(&self) -> usize {
        match self {
            MethodSpec::Erk(t) => t.order(),
            MethodSpec::Pirk { corrector, iters } => corrector.order().min(*iters),
        }
    }

    /// The methods the paper-style evaluation sweeps.
    #[must_use]
    pub fn paper_set() -> Vec<MethodSpec> {
        vec![
            MethodSpec::erk(Tableau::heun2()),
            MethodSpec::erk(Tableau::kutta3()),
            MethodSpec::erk(Tableau::rk4()),
            MethodSpec::pirk(Tableau::radau_iia2(), 3),
            MethodSpec::pirk(Tableau::lobatto_iiic2(), 2),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_ode::ivps::Heat2d;

    #[test]
    fn names_and_variants() {
        let e = MethodSpec::erk(Tableau::rk4());
        assert_eq!(e.name(), "rk4");
        assert_eq!(e.variants().len(), 4);
        let p = MethodSpec::pirk(Tableau::radau_iia2(), 3);
        assert_eq!(p.name(), "pirk-radauIIA2x3");
        assert_eq!(p.variants().len(), 2);
    }

    #[test]
    fn plans_compile_for_every_variant() {
        let ivp = Heat2d::new(16);
        for m in MethodSpec::paper_set() {
            for v in m.variants() {
                let plan = m.plan(&ivp, 1e-5, v);
                plan.validate().unwrap();
                assert!(!plan.ops.is_empty());
            }
        }
    }
}
