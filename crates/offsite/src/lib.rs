//! Offsite — the offline autotuner for explicit ODE methods, reproduced.
//!
//! Offsite explores the cross product of *method* × *implementation
//! variant* × *tuning parameters* for a given IVP and machine, using
//! performance predictions instead of exhaustive benchmarking. In the
//! paper, YaskSite supplies those predictions through its ECM model; this
//! crate reproduces the integration:
//!
//! 1. a method step is compiled to a [`yasksite_ode::StepPlan`];
//! 2. every sweep in the plan is predicted by the `yasksite` tool layer
//!    ([`predict_plan`]), after YaskSite's analytic tuner has chosen the
//!    block/fold parameters for the dominant kernel;
//! 3. candidates are ranked by predicted step time; the winner (and, for
//!    validation, every candidate) can then be *measured* on the
//!    simulated target hierarchy ([`measure_plan`]);
//! 4. reports quantify prediction error, ranking quality, speedup over a
//!    naive baseline, and tuning cost ([`Offsite::evaluate`]).
//!
//! # Examples
//!
//! ```
//! use offsite::{MethodSpec, Offsite};
//! use yasksite_arch::Machine;
//! use yasksite_ode::ivps::Heat2d;
//!
//! let offsite = Offsite::new(Machine::cascade_lake(), 2);
//! let ivp = Heat2d::new(64);
//! let report = offsite
//!     .evaluate(&ivp, &[MethodSpec::erk(yasksite_ode::Tableau::heun2())], 1e-5)
//!     .unwrap();
//! assert!(!report.candidates.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod method;
mod plan_perf;
mod tuner;

pub use method::MethodSpec;
pub use plan_perf::{
    measure_plan, predict_plan, predict_plan_cached, PlanBackend, PlanMeasurement, PlanPrediction,
};
pub use tuner::{CandidateReport, EvalOptions, EvalReport, Offsite, WorkPrecisionEntry};
