//! Predicting and measuring whole step plans.

use yasksite::{PredictionCache, Solution, ToolError};
use yasksite_arch::Machine;
use yasksite_engine::{apply_simulated, SimContext, TuningParams};
use yasksite_grid::Grid3;
use yasksite_ode::StepPlan;

/// Predicted cost of one method step.
#[derive(Debug, Clone)]
pub struct PlanPrediction {
    /// Predicted seconds per step (sum over sweeps).
    pub seconds_per_step: f64,
    /// Per-op predictions `(label, seconds)`.
    pub per_op: Vec<(String, f64)>,
    /// Per-op predictions served from the prediction cache.
    pub cache_hits: usize,
    /// Per-op predictions computed fresh.
    pub cache_misses: usize,
}

/// Measured (simulated) cost of one method step.
#[derive(Debug, Clone)]
pub struct PlanMeasurement {
    /// Steady-state seconds per step.
    pub seconds_per_step: f64,
    /// Total memory bytes moved per step in steady state.
    pub mem_bytes_per_step: f64,
}

/// Predicts one step of `plan` on `machine` analytically: each sweep is
/// predicted by the YaskSite ECM layer with the given tuning parameters
/// and core count, and the sweep times add up (the sweeps are globally
/// synchronised, as in the generated OpenMP code).
///
/// Predictions are served through the process-wide
/// [`PredictionCache::global`] — ERK plans reuse the same handful of
/// stencils across stages and methods, so repeated plan predictions are
/// mostly cache hits. Use [`predict_plan_cached`] to supply a private
/// cache.
#[must_use]
pub fn predict_plan(
    plan: &StepPlan,
    machine: &Machine,
    params: &TuningParams,
    cores: usize,
) -> PlanPrediction {
    predict_plan_cached(plan, machine, params, cores, PredictionCache::global())
}

/// [`predict_plan`] against an explicit [`PredictionCache`].
#[must_use]
pub fn predict_plan_cached(
    plan: &StepPlan,
    machine: &Machine,
    params: &TuningParams,
    cores: usize,
    cache: &PredictionCache,
) -> PlanPrediction {
    let mut per_op = Vec::with_capacity(plan.ops.len());
    let mut total = 0.0;
    let mut cache_hits = 0usize;
    let mut cache_misses = 0usize;
    // Steady-state resident set: the whole grid pool of the step.
    let grid_bytes = (plan.domain[0] + 2 * plan.halo[0]) as f64
        * (plan.domain[1] + 2 * plan.halo[1]) as f64
        * (plan.domain[2] + 2 * plan.halo[2]) as f64
        * 8.0;
    let resident = plan.num_grids as f64 * grid_bytes;
    for op in &plan.ops {
        let sol = Solution::new(op.stencil.clone(), plan.domain, machine.clone());
        let (pred, hit) = cache.predict_resident(&sol, params, cores, resident);
        if hit {
            cache_hits += 1;
        } else {
            cache_misses += 1;
        }
        per_op.push((op.label.clone(), pred.seconds_per_sweep));
        total += pred.seconds_per_sweep;
    }
    PlanPrediction {
        seconds_per_step: total,
        per_op,
        cache_hits,
        cache_misses,
    }
}

/// Measures one step of `plan` on the simulated hierarchy of `machine`:
/// executes the plan's sweeps twice (warm-up step + steady-state step)
/// against a grid pool with the plan's halos and the parameters' fold,
/// and reports the steady-state step time.
///
/// # Errors
/// Propagates engine errors (invalid parameters etc.).
pub fn measure_plan(
    plan: &StepPlan,
    machine: &Machine,
    params: &TuningParams,
) -> Result<PlanMeasurement, ToolError> {
    let pool: Vec<Grid3> = (0..plan.num_grids)
        .map(|g| Grid3::new(&format!("pool{g}"), plan.domain, plan.halo, params.fold))
        .collect();
    let mut ctx = SimContext::new(machine, params.threads);
    let step = |ctx: &mut SimContext| -> Result<(), ToolError> {
        for op in &plan.ops {
            let inputs: Vec<&Grid3> = op.inputs.iter().map(|&g| &pool[g]).collect();
            apply_simulated(&op.stencil, &inputs, &pool[op.output], params, ctx)
                .map_err(ToolError::Engine)?;
        }
        Ok(())
    };
    step(&mut ctx)?;
    let warm = ctx.finish();
    step(&mut ctx)?;
    let total = ctx.finish();
    let seconds = (total.time.seconds - warm.time.seconds).max(1e-12);
    let mem_bytes =
        total.stats.mem_bytes(machine.line_bytes()) - warm.stats.mem_bytes(machine.line_bytes());
    Ok(PlanMeasurement {
        seconds_per_step: seconds,
        mem_bytes_per_step: mem_bytes.max(0.0),
    })
}

/// A [`yasksite::MeasureBackend`] over a whole step plan: one sample is one
/// steady-state step measurement via [`measure_plan`]. This is the hook
/// the offsite evaluator uses so that plan measurements flow through the
/// same robust trial protocol (retries, outlier rejection, fallback) as
/// single-sweep measurements, and so faults can be injected for testing.
pub struct PlanBackend<'a> {
    plan: &'a StepPlan,
    machine: &'a Machine,
}

impl<'a> PlanBackend<'a> {
    /// Creates a backend measuring `plan` on `machine`.
    #[must_use]
    pub fn new(plan: &'a StepPlan, machine: &'a Machine) -> Self {
        Self { plan, machine }
    }
}

impl yasksite::MeasureBackend for PlanBackend<'_> {
    fn run_sample(&mut self, params: &TuningParams) -> Result<f64, ToolError> {
        Ok(measure_plan(self.plan, self.machine, params)?.seconds_per_step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_grid::Fold;
    use yasksite_ode::ivps::Heat2d;
    use yasksite_ode::{erk_plan, Tableau, Variant};

    fn setup() -> (Heat2d, StepPlan, TuningParams, Machine) {
        let ivp = Heat2d::new(64);
        let plan = erk_plan(&Tableau::rk4(), &ivp, 1e-5, Variant::A);
        let params = TuningParams::new([64, 16, 1], Fold::new(8, 1, 1));
        (ivp, plan, params, Machine::cascade_lake())
    }

    #[test]
    fn prediction_covers_every_op() {
        let (_ivp, plan, params, m) = setup();
        let p = predict_plan(&plan, &m, &params, 1);
        assert_eq!(p.per_op.len(), plan.ops.len());
        let sum: f64 = p.per_op.iter().map(|(_, s)| s).sum();
        assert!((sum - p.seconds_per_step).abs() < 1e-12);
        assert!(p.seconds_per_step > 0.0);
    }

    #[test]
    fn fused_variant_predicted_faster() {
        let ivp = Heat2d::new(128);
        let params = TuningParams::new([128, 16, 1], Fold::new(8, 1, 1));
        let m = Machine::cascade_lake();
        let a = predict_plan(
            &erk_plan(&Tableau::rk4(), &ivp, 1e-5, Variant::A),
            &m,
            &params,
            1,
        );
        let d = predict_plan(
            &erk_plan(&Tableau::rk4(), &ivp, 1e-5, Variant::D),
            &m,
            &params,
            1,
        );
        assert!(
            d.seconds_per_step < a.seconds_per_step,
            "D {:.3e} should beat A {:.3e}",
            d.seconds_per_step,
            a.seconds_per_step
        );
    }

    #[test]
    fn cached_plan_prediction_matches_fresh() {
        let (_ivp, plan, params, m) = setup();
        let cache = PredictionCache::new();
        let cold = predict_plan_cached(&plan, &m, &params, 1, &cache);
        let warm = predict_plan_cached(&plan, &m, &params, 1, &cache);
        assert_eq!(
            cold.seconds_per_step.to_bits(),
            warm.seconds_per_step.to_bits()
        );
        for (a, b) in cold.per_op.iter().zip(warm.per_op.iter()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        assert_eq!(cold.cache_hits + cold.cache_misses, plan.ops.len());
        assert!(cold.cache_misses >= 1);
        assert_eq!(warm.cache_misses, 0, "second pass is fully cached");
        assert_eq!(warm.cache_hits, plan.ops.len());
    }

    #[test]
    fn measurement_runs_and_is_positive() {
        let (_ivp, plan, params, m) = setup();
        let meas = measure_plan(&plan, &m, &params).unwrap();
        assert!(meas.seconds_per_step > 0.0);
        assert!(meas.mem_bytes_per_step >= 0.0);
    }

    #[test]
    fn prediction_within_factor_three_of_measurement() {
        // The paper's headline accuracy claim, loosely checked.
        let (_ivp, plan, params, m) = setup();
        let pred = predict_plan(&plan, &m, &params, 1).seconds_per_step;
        let meas = measure_plan(&plan, &m, &params).unwrap().seconds_per_step;
        let ratio = pred / meas;
        assert!(
            (0.33..3.0).contains(&ratio),
            "prediction {pred:.3e} vs measurement {meas:.3e} (ratio {ratio:.2})"
        );
    }
}
