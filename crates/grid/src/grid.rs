//! The folded 3-D grid container.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{Fold, ELEM_BYTES};

/// Errors reported by grid operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// Two grids were expected to have identical shape/fold/halo.
    LayoutMismatch {
        /// Description of the differing property.
        what: String,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::LayoutMismatch { what } => write!(f, "grid layout mismatch: {what}"),
        }
    }
}

impl std::error::Error for GridError {}

/// Synthetic-address allocator: every grid occupies a distinct, page-aligned
/// address range so the cache simulator sees realistic (conflict-capable)
/// placements.
static NEXT_BASE: AtomicU64 = AtomicU64::new(0x1000_0000);

fn allocate_range(bytes: u64) -> u64 {
    let sz = (bytes + 4095) & !4095;
    NEXT_BASE.fetch_add(sz, Ordering::Relaxed)
}

/// A 3-dimensional `f64` grid with halos, stored in YASK's vector-folded
/// layout.
///
/// Domain coordinates run from `0..n[d]`; halo points are addressed with
/// coordinates in `-halo[d]..0` and `n[d]..n[d]+halo[d]`. The allocated
/// extent of each dimension is `n + 2*halo` rounded up to a multiple of the
/// fold extent, so every fold brick is fully backed by storage.
#[derive(Debug, Clone)]
pub struct Grid3 {
    name: String,
    n: [usize; 3],
    halo: [usize; 3],
    fold: Fold,
    alloc: [usize; 3],
    folds: [usize; 3],
    data: Vec<f64>,
    base_addr: u64,
}

impl Grid3 {
    /// Creates a zero-initialised grid.
    ///
    /// `n` is the domain size (x, y, z), `halo` the halo width per dimension
    /// (applied on both sides).
    ///
    /// # Panics
    /// Panics if any domain extent is zero.
    #[must_use]
    pub fn new(name: &str, n: [usize; 3], halo: [usize; 3], fold: Fold) -> Self {
        assert!(n.iter().all(|&e| e > 0), "domain extents must be positive");
        let f = fold.to_array();
        let mut alloc = [0usize; 3];
        let mut folds = [0usize; 3];
        for d in 0..3 {
            let raw = n[d] + 2 * halo[d];
            alloc[d] = raw.div_ceil(f[d]) * f[d];
            folds[d] = alloc[d] / f[d];
        }
        let len = alloc[0] * alloc[1] * alloc[2];
        let base_addr = allocate_range((len * ELEM_BYTES) as u64);
        Grid3 {
            name: name.to_string(),
            n,
            halo,
            fold,
            alloc,
            folds,
            data: vec![0.0; len],
            base_addr,
        }
    }

    /// Grid name (used in reports and codegen).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Domain size `[nx, ny, nz]`.
    #[must_use]
    pub fn n(&self) -> [usize; 3] {
        self.n
    }

    /// Halo widths `[hx, hy, hz]`.
    #[must_use]
    pub fn halo(&self) -> [usize; 3] {
        self.halo
    }

    /// The fold shape this grid is stored with.
    #[must_use]
    pub fn fold(&self) -> Fold {
        self.fold
    }

    /// Allocated extents (domain + halos, rounded up to fold multiples).
    #[must_use]
    pub fn alloc(&self) -> [usize; 3] {
        self.alloc
    }

    /// Total allocated elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the grid holds no elements (never true for a valid grid).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Allocated bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.data.len() * ELEM_BYTES
    }

    /// Number of domain points (`nx*ny*nz`).
    #[must_use]
    pub fn domain_points(&self) -> usize {
        self.n[0] * self.n[1] * self.n[2]
    }

    /// Base of this grid's synthetic address range.
    #[must_use]
    pub fn base_addr(&self) -> u64 {
        self.base_addr
    }

    /// Linear storage index for domain coordinates `(i, j, k)`; halo points
    /// use negative / over-extent coordinates.
    ///
    /// # Panics
    /// Panics (in debug builds) if a coordinate lies outside the allocated
    /// range.
    #[inline]
    #[must_use]
    pub fn idx(&self, i: isize, j: isize, k: isize) -> usize {
        let f = self.fold.to_array();
        let c = [i, j, k];
        let mut brick = [0usize; 3];
        let mut within = [0usize; 3];
        for d in 0..3 {
            let u = c[d] + self.halo[d] as isize;
            debug_assert!(
                u >= 0 && (u as usize) < self.alloc[d],
                "coordinate {} out of range in dim {d} for grid {}",
                c[d],
                self.name
            );
            let u = u as usize;
            brick[d] = u / f[d];
            within[d] = u % f[d];
        }
        let fold_lin = (brick[2] * self.folds[1] + brick[1]) * self.folds[0] + brick[0];
        let within_lin = (within[2] * f[1] + within[1]) * f[0] + within[0];
        fold_lin * self.fold.elems() + within_lin
    }

    /// Synthetic byte address of element `(i, j, k)` (for the cache
    /// simulator).
    #[inline]
    #[must_use]
    pub fn addr(&self, i: isize, j: isize, k: isize) -> u64 {
        self.base_addr + (self.idx(i, j, k) * ELEM_BYTES) as u64
    }

    /// Reads element `(i, j, k)`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: isize, j: isize, k: isize) -> f64 {
        self.data[self.idx(i, j, k)]
    }

    /// Writes element `(i, j, k)`.
    #[inline]
    pub fn set(&mut self, i: isize, j: isize, k: isize, v: f64) {
        let idx = self.idx(i, j, k);
        self.data[idx] = v;
    }

    /// Raw storage access (layout-ordered), for the specialised native
    /// kernels.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw storage access.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Fills every *domain* point from a function of its coordinates.
    pub fn fill_with(&mut self, mut f: impl FnMut(usize, usize, usize) -> f64) {
        for k in 0..self.n[2] {
            for j in 0..self.n[1] {
                for i in 0..self.n[0] {
                    self.set(i as isize, j as isize, k as isize, f(i, j, k));
                }
            }
        }
    }

    /// Sets every element (domain *and* halo) to `v`.
    pub fn fill_all(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Sets all halo points to `v` (e.g. 0 for Dirichlet boundaries).
    pub fn fill_halo(&mut self, v: f64) {
        let n = self.n.map(|e| e as isize);
        let h = self.halo.map(|e| e as isize);
        for k in -h[2]..n[2] + h[2] {
            for j in -h[1]..n[1] + h[1] {
                for i in -h[0]..n[0] + h[0] {
                    let inside = i >= 0 && i < n[0] && j >= 0 && j < n[1] && k >= 0 && k < n[2];
                    if !inside {
                        self.set(i, j, k, v);
                    }
                }
            }
        }
    }

    /// Copies domain edge values into the halo periodically (wrap-around
    /// boundary), used by the wave IVP.
    pub fn fill_halo_periodic(&mut self) {
        let n = self.n.map(|e| e as isize);
        let h = self.halo.map(|e| e as isize);
        let wrap = |c: isize, n: isize| ((c % n) + n) % n;
        for k in -h[2]..n[2] + h[2] {
            for j in -h[1]..n[1] + h[1] {
                for i in -h[0]..n[0] + h[0] {
                    let inside = i >= 0 && i < n[0] && j >= 0 && j < n[1] && k >= 0 && k < n[2];
                    if !inside {
                        let v = self.get(wrap(i, n[0]), wrap(j, n[1]), wrap(k, n[2]));
                        self.set(i, j, k, v);
                    }
                }
            }
        }
    }

    /// Maximum absolute difference over the domain between two grids of the
    /// same domain size (layouts may differ — this is how folded results are
    /// checked against the scalar reference).
    ///
    /// # Errors
    /// Returns [`GridError::LayoutMismatch`] if the domain sizes differ.
    pub fn max_abs_diff(&self, other: &Grid3) -> Result<f64, GridError> {
        if self.n != other.n {
            return Err(GridError::LayoutMismatch {
                what: format!("domain {:?} vs {:?}", self.n, other.n),
            });
        }
        let mut m = 0.0f64;
        for k in 0..self.n[2] as isize {
            for j in 0..self.n[1] as isize {
                for i in 0..self.n[0] as isize {
                    m = m.max((self.get(i, j, k) - other.get(i, j, k)).abs());
                }
            }
        }
        Ok(m)
    }

    /// Exchanges the *contents* of two identically laid-out grids (O(1),
    /// used for time-step ping-ponging).
    ///
    /// # Errors
    /// Returns [`GridError::LayoutMismatch`] if shape, halo or fold differ.
    pub fn swap_data(&mut self, other: &mut Grid3) -> Result<(), GridError> {
        if self.n != other.n || self.halo != other.halo || self.fold != other.fold {
            return Err(GridError::LayoutMismatch {
                what: "swap requires identical shape, halo and fold".into(),
            });
        }
        std::mem::swap(&mut self.data, &mut other.data);
        std::mem::swap(&mut self.base_addr, &mut other.base_addr);
        Ok(())
    }

    /// Whether every domain (non-halo) value is finite — the divergence
    /// check integrators run after a step. A plain `f64::max` scan would
    /// silently skip NaN, so each element is tested individually.
    #[must_use]
    pub fn interior_all_finite(&self) -> bool {
        for k in 0..self.n[2] as isize {
            for j in 0..self.n[1] as isize {
                for i in 0..self.n[0] as isize {
                    if !self.get(i, j, k).is_finite() {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Sum of all domain values (useful as a cheap checksum in tests).
    #[must_use]
    pub fn domain_sum(&self) -> f64 {
        let mut s = 0.0;
        for k in 0..self.n[2] as isize {
            for j in 0..self.n[1] as isize {
                for i in 0..self.n[0] as isize {
                    s += self.get(i, j, k);
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_rounds_to_fold() {
        let g = Grid3::new("u", [10, 5, 3], [1, 1, 1], Fold::new(8, 1, 1));
        // x: 10+2=12 -> 16; y: 7 -> 7; z: 5 -> 5.
        assert_eq!(g.alloc(), [16, 7, 5]);
        assert_eq!(g.len(), 16 * 7 * 5);
    }

    #[test]
    fn interior_finiteness_check_sees_nan_and_inf() {
        let mut g = Grid3::new("u", [4, 4, 2], [1, 1, 1], Fold::unit());
        g.fill_all(1.0);
        assert!(g.interior_all_finite());
        // Halo values do not count.
        g.set(-1, 0, 0, f64::NAN);
        assert!(g.interior_all_finite());
        g.set(2, 3, 1, f64::NAN);
        assert!(!g.interior_all_finite());
        g.set(2, 3, 1, f64::INFINITY);
        assert!(!g.interior_all_finite());
    }

    #[test]
    fn get_set_roundtrip_including_halo() {
        let mut g = Grid3::new("u", [4, 4, 4], [2, 1, 1], Fold::new(4, 2, 1));
        g.set(-2, 0, 0, 7.0);
        g.set(5, 4, 4, 8.0);
        assert_eq!(g.get(-2, 0, 0), 7.0);
        assert_eq!(g.get(5, 4, 4), 8.0);
    }

    #[test]
    fn unit_fold_is_row_major() {
        let g = Grid3::new("u", [4, 3, 2], [0, 0, 0], Fold::unit());
        assert_eq!(g.idx(0, 0, 0), 0);
        assert_eq!(g.idx(1, 0, 0), 1);
        assert_eq!(g.idx(0, 1, 0), 4);
        assert_eq!(g.idx(0, 0, 1), 12);
    }

    #[test]
    fn folded_layout_brick_contiguous() {
        let g = Grid3::new("u", [8, 4, 2], [0, 0, 0], Fold::new(4, 2, 1));
        // Elements of the first brick are indices 0..8.
        let mut seen: Vec<usize> = Vec::new();
        for j in 0..2 {
            for i in 0..4 {
                seen.push(g.idx(i, j, 0));
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
        // Next x-brick follows contiguously.
        assert_eq!(g.idx(4, 0, 0), 8);
    }

    #[test]
    fn distinct_grids_get_distinct_address_ranges() {
        let a = Grid3::new("a", [8, 8, 8], [1, 1, 1], Fold::unit());
        let b = Grid3::new("b", [8, 8, 8], [1, 1, 1], Fold::unit());
        let a_end = a.base_addr() + a.bytes() as u64;
        assert!(b.base_addr() >= a_end || a.base_addr() >= b.base_addr() + b.bytes() as u64);
        assert_eq!(a.base_addr() % 4096, 0);
    }

    #[test]
    fn halo_fill_leaves_domain_untouched() {
        let mut g = Grid3::new("u", [4, 4, 1], [1, 1, 0], Fold::unit());
        g.fill_with(|_, _, _| 1.0);
        g.fill_halo(-1.0);
        assert_eq!(g.get(0, 0, 0), 1.0);
        assert_eq!(g.get(-1, 0, 0), -1.0);
        assert_eq!(g.get(4, 4, 0), -1.0);
        assert_eq!(g.domain_sum(), 16.0);
    }

    #[test]
    fn periodic_halo_wraps() {
        let mut g = Grid3::new("u", [4, 1, 1], [1, 0, 0], Fold::unit());
        g.fill_with(|i, _, _| i as f64);
        g.fill_halo_periodic();
        assert_eq!(g.get(-1, 0, 0), 3.0);
        assert_eq!(g.get(4, 0, 0), 0.0);
    }

    #[test]
    fn swap_data_swaps_addresses_too() {
        let mut a = Grid3::new("a", [4, 4, 1], [1, 1, 0], Fold::unit());
        let mut b = Grid3::new("b", [4, 4, 1], [1, 1, 0], Fold::unit());
        a.fill_all(1.0);
        b.fill_all(2.0);
        let (aa, ba) = (a.base_addr(), b.base_addr());
        a.swap_data(&mut b).unwrap();
        assert_eq!(a.get(0, 0, 0), 2.0);
        assert_eq!(b.get(0, 0, 0), 1.0);
        assert_eq!(a.base_addr(), ba);
        assert_eq!(b.base_addr(), aa);
    }

    #[test]
    fn swap_data_rejects_mismatched_layout() {
        let mut a = Grid3::new("a", [4, 4, 1], [1, 1, 0], Fold::unit());
        let mut b = Grid3::new("b", [4, 4, 2], [1, 1, 0], Fold::unit());
        assert!(a.swap_data(&mut b).is_err());
    }

    #[test]
    fn max_abs_diff_across_layouts() {
        let mut a = Grid3::new("a", [8, 8, 2], [0, 0, 0], Fold::unit());
        let mut b = Grid3::new("b", [8, 8, 2], [0, 0, 0], Fold::new(4, 2, 1));
        a.fill_with(|i, j, k| (i + 10 * j + 100 * k) as f64);
        b.fill_with(|i, j, k| (i + 10 * j + 100 * k) as f64);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.0);
        b.set(3, 3, 1, -5.0);
        assert!(a.max_abs_diff(&b).unwrap() > 0.0);
    }

    proptest! {
        /// The layout map (i,j,k) -> idx is injective and in-bounds for
        /// arbitrary shapes, halos and folds.
        #[test]
        fn layout_is_a_bijection(
            nx in 1usize..12, ny in 1usize..6, nz in 1usize..5,
            hx in 0usize..3, hy in 0usize..2, hz in 0usize..2,
            fold_pick in 0usize..10,
        ) {
            let folds = Fold::candidates(8);
            let fold = folds[fold_pick % folds.len()];
            let g = Grid3::new("p", [nx, ny, nz], [hx, hy, hz], fold);
            let mut seen = std::collections::HashSet::new();
            for k in -(hz as isize)..(nz + hz) as isize {
                for j in -(hy as isize)..(ny + hy) as isize {
                    for i in -(hx as isize)..(nx + hx) as isize {
                        let idx = g.idx(i, j, k);
                        prop_assert!(idx < g.len());
                        prop_assert!(seen.insert(idx), "collision at ({i},{j},{k})");
                    }
                }
            }
        }

        /// Values written at distinct points are read back exactly.
        #[test]
        fn write_read_roundtrip(
            nx in 1usize..10, ny in 1usize..6, nz in 1usize..4,
            fold_pick in 0usize..6,
        ) {
            let folds = Fold::candidates(4);
            let fold = folds[fold_pick % folds.len()];
            let mut g = Grid3::new("p", [nx, ny, nz], [1, 1, 1], fold);
            g.fill_with(|i, j, k| (i * 31 + j * 7 + k) as f64);
            for k in 0..nz {
                for j in 0..ny {
                    for i in 0..nx {
                        prop_assert_eq!(
                            g.get(i as isize, j as isize, k as isize),
                            (i * 31 + j * 7 + k) as f64
                        );
                    }
                }
            }
        }
    }
}
