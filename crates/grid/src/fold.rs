//! Vector-fold shapes.

use std::fmt;

/// The shape of one SIMD brick in elements per dimension (x, y, z).
///
/// A fold's element count normally equals the SIMD lane count of the target
/// (8 for AVX-512 doubles, 4 for AVX2). `Fold::new(8, 1, 1)` is the
/// conventional "in-line" layout; `Fold::new(4, 2, 1)` is a 2-D fold that
/// trades x-contiguity for fewer distinct cache lines touched per stencil
/// update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fold {
    /// Elements per brick along x (unit-stride dimension).
    pub x: usize,
    /// Elements per brick along y.
    pub y: usize,
    /// Elements per brick along z (slowest dimension).
    pub z: usize,
}

impl Fold {
    /// Creates a fold shape.
    ///
    /// # Panics
    /// Panics if any extent is zero.
    #[must_use]
    pub fn new(x: usize, y: usize, z: usize) -> Self {
        assert!(x > 0 && y > 0 && z > 0, "fold extents must be positive");
        Fold { x, y, z }
    }

    /// The scalar layout: a 1×1×1 fold.
    #[must_use]
    pub fn unit() -> Self {
        Fold { x: 1, y: 1, z: 1 }
    }

    /// Total elements per brick.
    #[must_use]
    pub fn elems(&self) -> usize {
        self.x * self.y * self.z
    }

    /// All folds whose element count equals `lanes`, in x-major preference
    /// order. These are the candidate layouts the tuner enumerates.
    ///
    /// ```
    /// use yasksite_grid::Fold;
    /// let folds = Fold::candidates(8);
    /// assert!(folds.contains(&Fold::new(8, 1, 1)));
    /// assert!(folds.contains(&Fold::new(4, 2, 1)));
    /// assert!(folds.iter().all(|f| f.elems() == 8));
    /// ```
    #[must_use]
    pub fn candidates(lanes: usize) -> Vec<Fold> {
        let mut out = Vec::new();
        for x in (1..=lanes).rev() {
            if !lanes.is_multiple_of(x) {
                continue;
            }
            let yz = lanes / x;
            for y in (1..=yz).rev() {
                if !yz.is_multiple_of(y) {
                    continue;
                }
                out.push(Fold::new(x, y, yz / y));
            }
        }
        out
    }

    /// Extents as an `[x, y, z]` array.
    #[must_use]
    pub fn to_array(self) -> [usize; 3] {
        [self.x, self.y, self.z]
    }
}

impl Default for Fold {
    fn default() -> Self {
        Fold::unit()
    }
}

impl fmt::Display for Fold {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elems() {
        assert_eq!(Fold::new(4, 2, 1).elems(), 8);
        assert_eq!(Fold::unit().elems(), 1);
    }

    #[test]
    fn candidates_cover_all_factorizations() {
        let c = Fold::candidates(8);
        // 8 = product of three ordered factors: (8,1,1),(4,2,1),(4,1,2),
        // (2,4,1),(2,2,2),(2,1,4),(1,8,1),(1,4,2),(1,2,4),(1,1,8).
        assert_eq!(c.len(), 10);
        assert_eq!(c[0], Fold::new(8, 1, 1));
        for f in &c {
            assert_eq!(f.elems(), 8);
        }
    }

    #[test]
    fn candidates_avx2() {
        let c = Fold::candidates(4);
        assert_eq!(c.len(), 6);
        assert!(c.contains(&Fold::new(2, 2, 1)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_panics() {
        let _ = Fold::new(0, 1, 1);
    }

    #[test]
    fn display() {
        assert_eq!(Fold::new(4, 2, 1).to_string(), "4x2x1");
    }
}
