//! Vector-fold shapes.

use std::fmt;

/// The shape of one SIMD brick in elements per dimension (x, y, z).
///
/// A fold's element count normally equals the SIMD lane count of the target
/// (8 for AVX-512 doubles, 4 for AVX2). `Fold::new(8, 1, 1)` is the
/// conventional "in-line" layout; `Fold::new(4, 2, 1)` is a 2-D fold that
/// trades x-contiguity for fewer distinct cache lines touched per stencil
/// update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fold {
    /// Elements per brick along x (unit-stride dimension).
    pub x: usize,
    /// Elements per brick along y.
    pub y: usize,
    /// Elements per brick along z (slowest dimension).
    pub z: usize,
}

impl Fold {
    /// Creates a fold shape.
    ///
    /// # Panics
    /// Panics if any extent is zero.
    #[must_use]
    pub fn new(x: usize, y: usize, z: usize) -> Self {
        assert!(x > 0 && y > 0 && z > 0, "fold extents must be positive");
        Fold { x, y, z }
    }

    /// The scalar layout: a 1×1×1 fold.
    #[must_use]
    pub fn unit() -> Self {
        Fold { x: 1, y: 1, z: 1 }
    }

    /// Total elements per brick.
    #[must_use]
    pub fn elems(&self) -> usize {
        self.x * self.y * self.z
    }

    /// All folds whose element count equals `lanes`, in x-major preference
    /// order. These are the candidate layouts the tuner enumerates.
    ///
    /// # Ordering contract
    ///
    /// The returned list is **deterministic** and **duplicate-free** for
    /// every lane count: candidates are emitted in strictly descending
    /// x-extent, and within one x-extent in strictly descending y-extent,
    /// so the first element is always the in-line fold
    /// `Fold::new(lanes, 1, 1)` and the last is `Fold::new(1, 1, lanes)`.
    /// Each `(x, y, z)` factorization of `lanes` appears exactly once.
    /// Callers (the tuner's `SearchSpace`, the engine's tier planner)
    /// rely on this order being stable across calls and lane counts.
    ///
    /// Candidates are *not* filtered against any domain here; use
    /// [`Fold::fits`] to reject folds whose brick exceeds the domain, the
    /// same way `SearchSpace` clips oversize blocks.
    ///
    /// ```
    /// use yasksite_grid::Fold;
    /// let folds = Fold::candidates(8);
    /// assert_eq!(folds[0], Fold::new(8, 1, 1));
    /// assert!(folds.contains(&Fold::new(4, 2, 1)));
    /// assert!(folds.iter().all(|f| f.elems() == 8));
    /// ```
    #[must_use]
    pub fn candidates(lanes: usize) -> Vec<Fold> {
        let mut out = Vec::new();
        for x in (1..=lanes).rev() {
            if !lanes.is_multiple_of(x) {
                continue;
            }
            let yz = lanes / x;
            for y in (1..=yz).rev() {
                if !yz.is_multiple_of(y) {
                    continue;
                }
                out.push(Fold::new(x, y, yz / y));
            }
        }
        out
    }

    /// Whether one brick of this fold fits inside `domain`: a fold whose
    /// extent exceeds the domain in any dimension would allocate bricks
    /// that are mostly halo/padding and is rejected from the search space
    /// (the fold analogue of `SearchSpace` clipping oversize blocks).
    ///
    /// ```
    /// use yasksite_grid::Fold;
    /// assert!(Fold::new(4, 2, 1).fits([8, 8, 8]));
    /// assert!(!Fold::new(4, 2, 1).fits([8, 1, 8]));
    /// ```
    #[must_use]
    pub fn fits(&self, domain: [usize; 3]) -> bool {
        self.x <= domain[0] && self.y <= domain[1] && self.z <= domain[2]
    }

    /// Extents as an `[x, y, z]` array.
    #[must_use]
    pub fn to_array(self) -> [usize; 3] {
        [self.x, self.y, self.z]
    }
}

impl Default for Fold {
    fn default() -> Self {
        Fold::unit()
    }
}

impl fmt::Display for Fold {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elems() {
        assert_eq!(Fold::new(4, 2, 1).elems(), 8);
        assert_eq!(Fold::unit().elems(), 1);
    }

    #[test]
    fn candidates_cover_all_factorizations() {
        let c = Fold::candidates(8);
        // 8 = product of three ordered factors: (8,1,1),(4,2,1),(4,1,2),
        // (2,4,1),(2,2,2),(2,1,4),(1,8,1),(1,4,2),(1,2,4),(1,1,8).
        assert_eq!(c.len(), 10);
        assert_eq!(c[0], Fold::new(8, 1, 1));
        for f in &c {
            assert_eq!(f.elems(), 8);
        }
    }

    #[test]
    fn candidates_avx2() {
        let c = Fold::candidates(4);
        assert_eq!(c.len(), 6);
        assert!(c.contains(&Fold::new(2, 2, 1)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_panics() {
        let _ = Fold::new(0, 1, 1);
    }

    #[test]
    fn candidates_are_deduped_and_deterministic_across_lane_counts() {
        for lanes in [4usize, 8, 16] {
            let a = Fold::candidates(lanes);
            let b = Fold::candidates(lanes);
            assert_eq!(a, b, "candidates({lanes}) must be deterministic");
            let mut seen = std::collections::HashSet::new();
            for f in &a {
                assert!(seen.insert(*f), "duplicate candidate {f} for {lanes} lanes");
                assert_eq!(f.elems(), lanes);
            }
            // The documented preference order: in-line fold first,
            // z-major fold last, x strictly non-increasing throughout.
            assert_eq!(a[0], Fold::new(lanes, 1, 1));
            assert_eq!(a[a.len() - 1], Fold::new(1, 1, lanes));
            for w in a.windows(2) {
                assert!(
                    w[0].x >= w[1].x,
                    "x-major order violated at {}/{}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn fits_rejects_folds_wider_than_the_domain() {
        assert!(Fold::new(8, 1, 1).fits([8, 1, 1]));
        assert!(!Fold::new(8, 1, 1).fits([7, 8, 8]));
        assert!(!Fold::new(1, 2, 4).fits([64, 64, 2]));
        assert!(Fold::unit().fits([1, 1, 1]));
        // Every 8-lane candidate fits a generous cube; none fits a thin slab
        // except those that are flat in y and z.
        for f in Fold::candidates(8) {
            assert!(f.fits([16, 16, 16]));
            assert_eq!(f.fits([64, 64, 1]), f.z == 1);
        }
    }

    #[test]
    fn display() {
        assert_eq!(Fold::new(4, 2, 1).to_string(), "4x2x1");
    }
}
