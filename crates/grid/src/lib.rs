//! Folded grids with halos — the data substrate of the YaskSite reproduction.
//!
//! YASK stores grids in a *vector-folded* layout: the domain is tiled into
//! small SIMD-sized bricks (e.g. 4×2×1 doubles for AVX-512), the elements of
//! one brick are contiguous in memory, and the bricks themselves are laid out
//! in x-fastest order. Folding turns the scattered neighbour accesses of a
//! stencil into whole-vector loads and is one of the tuning parameters the
//! paper's tool selects. This crate implements that layout ([`Grid3`],
//! [`Fold`]) together with halo management and the synthetic byte addresses
//! that feed the cache simulator.
//!
//! Grids are always 3-dimensional; lower-dimensional problems use extent 1 in
//! the unused dimensions, exactly like YASK does.
//!
//! # Examples
//!
//! ```
//! use yasksite_grid::{Fold, Grid3};
//!
//! let mut g = Grid3::new("u", [16, 8, 8], [1, 1, 1], Fold::new(8, 1, 1));
//! g.set(0, 0, 0, 3.5);
//! assert_eq!(g.get(0, 0, 0), 3.5);
//! // Halo points are addressable with negative coordinates:
//! g.set(-1, 0, 0, 1.0);
//! assert_eq!(g.get(-1, 0, 0), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fold;
mod grid;

pub use fold::Fold;
pub use grid::{Grid3, GridError};

/// Size of one `f64` element in bytes.
pub const ELEM_BYTES: usize = 8;
